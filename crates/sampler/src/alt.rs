//! Alternative graph samplers.
//!
//! The paper's conclusion commits to "extend the parallel sampler
//! implementation to support a wider class of sampling algorithms". These
//! are the classic alternatives from the graph-sampling literature the
//! frontier sampler is usually compared against; the `ablation_samplers`
//! bench trains the GCN with each and compares accuracy.

use crate::rng::Xorshift128Plus;
use crate::GraphSampler;
use gsgcn_graph::{BitSet, Topology};

/// Uniform random vertex sampling (no topology awareness).
#[derive(Clone, Debug)]
pub struct UniformNodeSampler {
    /// Number of vertices to draw.
    pub budget: usize,
}

impl GraphSampler for UniformNodeSampler {
    fn sample_vertices(&self, g: &dyn Topology, seed: u64) -> Vec<u32> {
        let n = g.num_vertices();
        let k = self.budget.min(n);
        Xorshift128Plus::new(seed).sample_distinct(n, k)
    }

    fn name(&self) -> &'static str {
        "uniform-node"
    }
}

/// Uniform random edge sampling: draw edges, keep their endpoints.
/// Biases vertex inclusion towards high degree (each endpoint is included
/// with probability ∝ degree), similar to frontier sampling's pop rule but
/// without connectivity between draws.
#[derive(Clone, Debug)]
pub struct UniformEdgeSampler {
    /// Vertex budget (sampling stops once this many distinct endpoints).
    pub budget: usize,
}

impl GraphSampler for UniformEdgeSampler {
    fn sample_vertices(&self, g: &dyn Topology, seed: u64) -> Vec<u32> {
        let n = g.num_vertices();
        let m = g.num_edges();
        let budget = self.budget.min(n);
        let mut rng = Xorshift128Plus::new(seed);
        let mut seen = BitSet::new(n);
        let mut out = Vec::with_capacity(budget);
        if m == 0 {
            return Xorshift128Plus::new(seed).sample_distinct(n, budget);
        }
        // Edge-slot → (source, target) mapping. A resident CSR exposes its
        // offset/adjacency arrays directly; any other backend gets the
        // identical mapping from a degree prefix sum plus `neighbor()`
        // (the prefix sums equal the CSR offsets by construction, so both
        // paths are bit-identical for a fixed seed).
        let csr = g.as_csr();
        let fallback_offsets: Option<Vec<usize>> = if csr.is_none() {
            let mut off = Vec::with_capacity(n + 1);
            let mut acc = 0usize;
            off.push(0);
            for v in 0..n as u32 {
                acc += g.degree(v);
                off.push(acc);
            }
            Some(off)
        } else {
            None
        };
        let offsets: &[usize] = match csr {
            Some(c) => c.offsets(),
            None => fallback_offsets.as_deref().unwrap(),
        };
        // Draw directed edge slots uniformly: equivalent to uniform edges
        // on a symmetric graph. Guard against degenerate loops with a cap.
        let max_draws = budget * 64 + 64;
        for _ in 0..max_draws {
            if out.len() >= budget {
                break;
            }
            let e = rng.next_range(m);
            // Binary search the source vertex owning edge slot e.
            let u = offsets.partition_point(|&o| o <= e) - 1;
            let v = match csr {
                Some(c) => c.adjacency()[e],
                None => g.neighbor(u as u32, e - offsets[u]),
            };
            for w in [u as u32, v] {
                if out.len() < budget && seen.insert(w as usize) {
                    out.push(w);
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "uniform-edge"
    }
}

/// Multi-start simple random walk: `walkers` walkers take unbiased steps
/// until the distinct-vertex budget is met. Frontier sampling is the
/// "m-dimensional" generalisation of this (Ribeiro & Towsley, ref.\[5\]).
#[derive(Clone, Debug)]
pub struct RandomWalkSampler {
    /// Number of independent walkers.
    pub walkers: usize,
    /// Vertex budget.
    pub budget: usize,
    /// Restart probability (teleport to the walker's start vertex), the
    /// "random walk with restart" variant; 0.0 disables restarts.
    pub restart_prob: f64,
}

impl GraphSampler for RandomWalkSampler {
    fn sample_vertices(&self, g: &dyn Topology, seed: u64) -> Vec<u32> {
        assert!(self.walkers >= 1);
        let n = g.num_vertices();
        let budget = self.budget.min(n);
        let mut rng = Xorshift128Plus::new(seed);
        let starts = rng.sample_distinct(n, self.walkers.min(n));
        let mut pos = starts.clone();
        let mut seen = BitSet::new(n);
        let mut out = Vec::with_capacity(budget);
        for &s in &starts {
            if out.len() < budget && seen.insert(s as usize) {
                out.push(s);
            }
        }
        // Step walkers round-robin; cap total steps to avoid livelock on
        // disconnected graphs.
        let max_steps = budget * 64 + 64;
        let mut steps = 0;
        while out.len() < budget && steps < max_steps {
            for (w, p) in pos.iter_mut().enumerate() {
                steps += 1;
                if out.len() >= budget {
                    break;
                }
                let restart = self.restart_prob > 0.0 && rng.next_f64() < self.restart_prob;
                let next = if restart || g.degree(*p) == 0 {
                    starts[w % starts.len()]
                } else {
                    g.neighbor(*p, rng.next_range(g.degree(*p)))
                };
                *p = next;
                if seen.insert(next as usize) {
                    out.push(next);
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "random-walk"
    }
}

/// Forest-fire sampling: burn outward from random seeds, each vertex
/// igniting a geometrically distributed number of its unburned neighbors.
#[derive(Clone, Debug)]
pub struct ForestFireSampler {
    /// Vertex budget.
    pub budget: usize,
    /// Forward-burning probability `p_f` (geometric mean `p_f/(1-p_f)`
    /// neighbors ignited per burned vertex). Typical: 0.7.
    pub burn_prob: f64,
}

impl GraphSampler for ForestFireSampler {
    fn sample_vertices(&self, g: &dyn Topology, seed: u64) -> Vec<u32> {
        assert!((0.0..1.0).contains(&self.burn_prob));
        let n = g.num_vertices();
        let budget = self.budget.min(n);
        let mut rng = Xorshift128Plus::new(seed);
        let mut burned = BitSet::new(n);
        let mut out = Vec::with_capacity(budget);
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        while out.len() < budget {
            if queue.is_empty() {
                // Ignite a fresh unburned seed.
                let mut v = rng.next_range(n) as u32;
                let mut tries = 0;
                while burned.contains(v as usize) && tries < 64 {
                    v = rng.next_range(n) as u32;
                    tries += 1;
                }
                if burned.contains(v as usize) {
                    match (0..n as u32).find(|&u| !burned.contains(u as usize)) {
                        Some(u) => v = u,
                        None => break,
                    }
                }
                burned.insert(v as usize);
                out.push(v);
                queue.push_back(v);
                continue;
            }
            let v = queue.pop_front().unwrap();
            // Geometric number of ignitions: keep burning while coin < p_f.
            let mut ignited = 0usize;
            let deg = g.degree(v);
            let mut order: Vec<usize> = (0..deg).collect();
            // Shuffle neighbor visit order.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.next_range(i + 1));
            }
            for &k in &order {
                if rng.next_f64() >= self.burn_prob {
                    break;
                }
                let u = g.neighbor(v, k);
                if !burned.contains(u as usize) {
                    burned.insert(u as usize);
                    out.push(u);
                    queue.push_back(u);
                    ignited += 1;
                    if out.len() >= budget {
                        break;
                    }
                }
            }
            let _ = ignited;
        }
        out
    }

    fn name(&self) -> &'static str {
        "forest-fire"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::{CsrGraph, GraphBuilder};

    fn grid(w: usize, h: usize) -> CsrGraph {
        let mut edges = Vec::new();
        let id = |x: usize, y: usize| (y * w + x) as u32;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        GraphBuilder::new(w * h).add_edges(edges).build()
    }

    fn assert_distinct(vs: &[u32]) {
        let mut s = vs.to_vec();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), vs.len(), "duplicates");
    }

    #[test]
    fn uniform_node_budget_and_distinct() {
        let g = grid(10, 10);
        let s = UniformNodeSampler { budget: 30 };
        let vs = s.sample_vertices(&g, 1);
        assert_eq!(vs.len(), 30);
        assert_distinct(&vs);
    }

    #[test]
    fn uniform_edge_prefers_connected() {
        let g = grid(10, 10);
        let s = UniformEdgeSampler { budget: 40 };
        let vs = s.sample_vertices(&g, 2);
        assert!(vs.len() <= 40 && vs.len() >= 2);
        assert_distinct(&vs);
    }

    #[test]
    fn uniform_edge_on_edgeless_graph_falls_back() {
        let g = CsrGraph::empty(10);
        let s = UniformEdgeSampler { budget: 5 };
        let vs = s.sample_vertices(&g, 3);
        assert_eq!(vs.len(), 5);
        assert_distinct(&vs);
    }

    #[test]
    fn random_walk_stays_connected_on_grid() {
        let g = grid(20, 20);
        let s = RandomWalkSampler {
            walkers: 3,
            budget: 50,
            restart_prob: 0.1,
        };
        let vs = s.sample_vertices(&g, 4);
        assert!(vs.len() == 50);
        assert_distinct(&vs);
        // Walk-based subgraphs should retain edges.
        let sub = s.sample_subgraph(&g, 4);
        assert!(sub.graph.num_edges() > 0);
    }

    #[test]
    fn forest_fire_burns_to_budget() {
        let g = grid(15, 15);
        let s = ForestFireSampler {
            budget: 60,
            burn_prob: 0.7,
        };
        let vs = s.sample_vertices(&g, 5);
        assert_eq!(vs.len(), 60);
        assert_distinct(&vs);
    }

    #[test]
    fn all_deterministic() {
        let g = grid(8, 8);
        let samplers: Vec<Box<dyn GraphSampler>> = vec![
            Box::new(UniformNodeSampler { budget: 20 }),
            Box::new(UniformEdgeSampler { budget: 20 }),
            Box::new(RandomWalkSampler {
                walkers: 2,
                budget: 20,
                restart_prob: 0.0,
            }),
            Box::new(ForestFireSampler {
                budget: 20,
                burn_prob: 0.6,
            }),
        ];
        for s in &samplers {
            assert_eq!(
                s.sample_vertices(&g, 9),
                s.sample_vertices(&g, 9),
                "{} not deterministic",
                s.name()
            );
        }
    }

    #[test]
    fn budget_clamps_to_graph_size() {
        let g = grid(3, 3);
        let s = UniformNodeSampler { budget: 100 };
        assert_eq!(s.sample_vertices(&g, 0).len(), 9);
        let s = ForestFireSampler {
            budget: 100,
            burn_prob: 0.5,
        };
        assert_eq!(s.sample_vertices(&g, 0).len(), 9);
    }
}
