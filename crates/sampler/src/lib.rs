//! Graph sampling: the paper's parallel Dashboard-based frontier sampler
//! (Sec. IV, Algorithms 2–4) plus everything around it.
//!
//! * [`rng`] — deterministic scalar and lane-batched xorshift generators.
//!   The lane-batched generator is the reproduction of the paper's AVX
//!   intra-subgraph parallelism (`p_intra`): 8 probe lanes advance together
//!   in a form LLVM auto-vectorises.
//! * [`dashboard`] — the Dashboard (`DB`) + index-array (`IA`) data
//!   structure and the frontier sampler built on it. Degree-proportional
//!   popping is done by uniform probing over slot blocks; frontier
//!   replacement appends incrementally; cleanup compacts lazily
//!   (amortised by the enlargement factor `η`).
//! * [`naive`] — the straightforward `O(m)`-per-pop frontier sampler the
//!   paper's Sec. IV-A calls "expensive given m = 1000"; kept as the
//!   ablation baseline and distribution ground truth.
//! * [`alt`] — alternative samplers (uniform node / edge, random walk,
//!   forest fire) for the "wider class of sampling algorithms" the paper
//!   lists as future work.
//! * [`pool`] — inter-subgraph parallelism: the shared `(batch, instance)`
//!   ticketing/seeding core plus the synchronous pool that fills
//!   `p_inter` independently sampled subgraphs at a time (Alg. 5,
//!   lines 3–5).
//! * [`pipeline`] — the pipelined producer–consumer path: dedicated
//!   sampler worker threads continuously sample ticketed subgraphs into a
//!   bounded, order-restoring queue so sampling overlaps training compute.
//! * [`cost_model`] — the analytic cost of Eq. (2) and the Theorem 1
//!   scalability bound.
//!
//! # Example
//!
//! ```
//! use gsgcn_graph::GraphBuilder;
//! use gsgcn_sampler::dashboard::{DashboardSampler, FrontierConfig};
//! use gsgcn_sampler::GraphSampler;
//!
//! let g = GraphBuilder::new(100)
//!     .add_edges((0..99u32).map(|i| (i, i + 1)))
//!     .build();
//! let sampler = DashboardSampler::new(FrontierConfig {
//!     frontier_size: 10,
//!     budget: 30,
//!     ..FrontierConfig::default()
//! });
//! let sub = sampler.sample_subgraph(&g, 42);
//! assert!(sub.num_vertices() <= 30);
//! ```

pub mod alt;
pub mod cost_model;
pub mod dashboard;
pub mod naive;
pub mod pipeline;
pub mod pool;
pub mod rng;
pub mod weighted;

use gsgcn_graph::{induced_subgraph, InducedSubgraph, Topology};

/// A graph-sampling algorithm: draws a vertex set from `g`.
///
/// Implementations must be deterministic in `(g, seed)` and cheap to share
/// across threads (`&self` sampling), so one configured sampler can drive
/// `p_inter` concurrent instances.
///
/// Topology is read through `&dyn Topology` so the same sampler runs
/// against a resident `CsrGraph` or a shard-backed `GraphStore` (a
/// `&CsrGraph` coerces implicitly at every call site). Both backends
/// expose identical neighbor order, so sampled vertex sets are
/// bit-identical for a fixed seed regardless of where the graph lives.
pub trait GraphSampler: Sync {
    /// Sample a vertex set (deduplicated, unsorted order unspecified).
    fn sample_vertices(&self, g: &dyn Topology, seed: u64) -> Vec<u32>;

    /// Human-readable sampler name for reports.
    fn name(&self) -> &'static str;

    /// Sample and extract the induced subgraph (Alg. 2 line 8).
    fn sample_subgraph(&self, g: &dyn Topology, seed: u64) -> InducedSubgraph {
        let verts = self.sample_vertices(g, seed);
        induced_subgraph(g, &verts)
    }
}
