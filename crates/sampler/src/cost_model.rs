//! Analytic cost model of the Dashboard sampler — Eq. (2) and Theorem 1.
//!
//! The paper models the cost to sample one subgraph with `p` processors as
//!
//! ```text
//! ( COST_rand / (1 − (1 − 1/η)^p)  +  (4 + 3/(η−1)) · d̄ · COST_mem / p ) · (n − m)
//! ```
//!
//! and proves (Theorem 1) that the speedup over `p = 1` is at least
//! `p / (1 + ε)` for every `p ≤ ε·d̄·(4 + 3/(η−1)) − η`.
//!
//! This module evaluates both so tests can verify the bound symbolically
//! and the Fig. 4 bench can print model-vs-measured scaling.

/// Parameters of the sampling cost model.
#[derive(Clone, Copy, Debug)]
pub struct SamplerCostModel {
    /// Enlargement factor `η > 1`.
    pub eta: f64,
    /// Average degree `d̄` of the training graph.
    pub avg_degree: f64,
    /// Cost of generating one random number.
    pub cost_rand: f64,
    /// Cost of one memory access.
    pub cost_mem: f64,
}

impl SamplerCostModel {
    /// Model with the paper's simplification `COST_mem = COST_rand = 1`.
    pub fn unit(eta: f64, avg_degree: f64) -> Self {
        SamplerCostModel {
            eta,
            avg_degree,
            cost_rand: 1.0,
            cost_mem: 1.0,
        }
    }

    /// Expected probe rounds per pop with `p` parallel probes:
    /// `1 / (1 − (1 − 1/η)^p)`.
    pub fn probe_rounds_per_pop(&self, p: usize) -> f64 {
        assert!(p >= 1);
        1.0 / (1.0 - (1.0 - 1.0 / self.eta).powi(p as i32))
    }

    /// Memory-operation multiplier `4 + 3/(η−1)`:
    /// block invalidation (d̄) + append (3·d̄) + amortised cleanup
    /// (3·d̄/(η−1)).
    pub fn mem_ops_factor(&self) -> f64 {
        4.0 + 3.0 / (self.eta - 1.0)
    }

    /// Eq. (2): total cost to sample one subgraph of budget `n` with
    /// frontier `m` on `p` processors.
    pub fn cost(&self, n: usize, m: usize, p: usize) -> f64 {
        assert!(n >= m);
        let per_pop = self.probe_rounds_per_pop(p) * self.cost_rand
            + self.mem_ops_factor() * self.avg_degree * self.cost_mem / p as f64;
        per_pop * (n - m) as f64
    }

    /// Modelled speedup of `p` processors over serial.
    pub fn speedup(&self, n: usize, m: usize, p: usize) -> f64 {
        self.cost(n, m, 1) / self.cost(n, m, p)
    }

    /// Theorem 1's processor bound: `p ≤ ε·d̄·(4 + 3/(η−1)) − η`.
    pub fn theorem1_max_p(&self, epsilon: f64) -> f64 {
        epsilon * self.avg_degree * self.mem_ops_factor() - self.eta
    }

    /// Theorem 1's guaranteed speedup `p / (1 + ε)` at `p` processors.
    pub fn theorem1_guarantee(&self, p: usize, epsilon: f64) -> f64 {
        p as f64 / (1.0 + epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_rounds_monotone_decreasing_in_p() {
        let m = SamplerCostModel::unit(2.0, 30.0);
        let mut prev = f64::INFINITY;
        for p in 1..=64 {
            let r = m.probe_rounds_per_pop(p);
            assert!(r >= 1.0, "at least one round");
            assert!(r <= prev, "rounds must not increase with p");
            prev = r;
        }
        // p = 1, η = 2: expect exactly 1/(1−1/2) = 2 rounds.
        assert!((m.probe_rounds_per_pop(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mem_factor_paper_values() {
        // η = 2 → 4 + 3 = 7; η = 3 → 4 + 1.5 = 5.5. With ε = 0.5, η = 3
        // the bound is 0.5·5.5·d − 3 = 2.75·d − 3 processors. (The paper's
        // prose quotes "2.25·d − 3", which is inconsistent with its own
        // formula ε·d·(4 + 3/(η−1)) − η; we follow the formula.)
        assert!((SamplerCostModel::unit(2.0, 1.0).mem_ops_factor() - 7.0).abs() < 1e-12);
        assert!((SamplerCostModel::unit(3.0, 1.0).mem_ops_factor() - 5.5).abs() < 1e-12);
        let m = SamplerCostModel::unit(3.0, 30.0);
        let bound = m.theorem1_max_p(0.5);
        assert!((bound - (2.75 * 30.0 - 3.0)).abs() < 1e-9);
    }

    #[test]
    fn cost_scales_with_budget() {
        let m = SamplerCostModel::unit(2.0, 20.0);
        let c1 = m.cost(2000, 1000, 4);
        let c2 = m.cost(3000, 1000, 4);
        assert!((c2 / c1 - 2.0).abs() < 1e-9, "cost linear in n − m");
    }

    #[test]
    fn theorem1_bound_holds_across_parameter_grid() {
        // For every (η, d̄, ε) and every valid p, speedup ≥ p/(1+ε).
        for &eta in &[1.5, 2.0, 3.0, 4.0] {
            for &d in &[10.0, 30.0, 100.0] {
                for &eps in &[0.25, 0.5, 1.0] {
                    let m = SamplerCostModel::unit(eta, d);
                    let pmax = m.theorem1_max_p(eps);
                    let mut p = 1usize;
                    while (p as f64) <= pmax && p <= 4096 {
                        let s = m.speedup(10_000, 1_000, p);
                        let g = m.theorem1_guarantee(p, eps);
                        assert!(
                            s >= g - 1e-9,
                            "violated: η={eta} d={d} ε={eps} p={p}: speedup {s:.3} < {g:.3}"
                        );
                        p += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn speedup_saturates_beyond_bound() {
        // Far beyond the bound the probing term dominates and speedup
        // stalls below ideal — the "difficult to scale on sparse graphs"
        // observation of Sec. IV-C.
        let m = SamplerCostModel::unit(2.0, 5.0); // sparse: d̄ = 5
        let s64 = m.speedup(10_000, 1_000, 64);
        assert!(
            s64 < 64.0 * 0.75,
            "sparse graph should not scale ideally: {s64}"
        );
    }
}
