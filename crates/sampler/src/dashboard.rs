//! The Dashboard-based frontier sampler (Sec. IV-B, Algorithms 3 & 4).
//!
//! # Data structure
//!
//! Degree-proportional popping (Alg. 2 line 4) is reduced to *uniform*
//! probing: every current frontier vertex `v` owns `min(deg(v), cap)`
//! contiguous slots in the Dashboard (`DB`), so a uniformly probed valid
//! slot selects `v` with probability proportional to its (capped) degree.
//! Frontier replacement appends the new vertex's slots and lazily
//! invalidates the popped vertex's block; a separate index array (`IA`)
//! records each block's start/length/liveness so the periodic *cleanup*
//! can compact live blocks without scanning the whole table.
//!
//! The table is sized `η·m·d̄` (enlargement factor `η > 1`), so cleanup
//! runs only `(n−m)/((η−1)·m)` times per subgraph — the amortisation that
//! gives the sampler its near-linear scalability (Theorem 1).
//!
//! # Differences from the paper (documented deviations)
//!
//! * Slot fields are `u32` (the paper packs INT16 offsets, which overflow
//!   for `η·m·d̄ > 32767` — already the case for Reddit-scale graphs).
//! * We probe uniformly over the *used prefix* of the table rather than
//!   the full capacity. The accepted-sample distribution is identical
//!   (uniform over valid slots); only the rejection constant improves.
//! * A popped vertex whose chosen replacement is isolated (degree 0)
//!   draws a fresh uniform vertex instead, so the frontier never decays
//!   (the paper assumes graphs without isolated vertices).
//! * If the live blocks alone overflow the table (pathological degree
//!   skew), the table grows geometrically instead of deadlocking; the
//!   `grows` stat counts this. The paper's degree cap (≤ 30 slots for the
//!   skewed Amazon graph) is [`FrontierConfig::degree_cap`].

use crate::rng::{LaneRng, Xorshift128Plus, LANES};
use crate::GraphSampler;
use gsgcn_graph::{BitSet, Topology};

/// Invalid-slot sentinel (paper's `INV`).
const INV: u32 = u32::MAX;

/// Probing strategy within one sampler instance — the paper's `p_intra`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeMode {
    /// One probe per round (serial baseline in Fig. 4B).
    Scalar,
    /// `LANES` (8) probes per round via the lane-batched RNG — the AVX
    /// analogue ("pintra = 8" in Sec. IV-C).
    Lanes,
}

/// Frontier-sampler configuration (Alg. 2/3 parameters).
#[derive(Clone, Debug)]
pub struct FrontierConfig {
    /// Frontier size `m`. The paper quotes `m = 1000` as a good empirical
    /// value (from the frontier-sampling paper, ref.\[5\]).
    pub frontier_size: usize,
    /// Vertex budget `n` — target `|V_sub|`.
    pub budget: usize,
    /// Enlargement factor `η > 1`; table capacity is `η·m·d̄`.
    pub eta: f64,
    /// Max Dashboard slots per vertex. The paper allocates at most 30
    /// entries per vertex on highly skewed graphs (Sec. VI-C2) to stop a
    /// hub from dominating every subgraph.
    pub degree_cap: Option<u32>,
    /// Probe vectorisation mode (`p_intra`).
    pub probe_mode: ProbeMode,
}

impl Default for FrontierConfig {
    fn default() -> Self {
        FrontierConfig {
            frontier_size: 1000,
            budget: 8000,
            eta: 2.0,
            degree_cap: None,
            probe_mode: ProbeMode::Lanes,
        }
    }
}

impl FrontierConfig {
    /// Validate parameter sanity; returns an error string for the CLI
    /// layers to surface.
    pub fn validate(&self) -> Result<(), String> {
        if self.frontier_size == 0 {
            return Err("frontier_size (m) must be ≥ 1".into());
        }
        if self.budget < self.frontier_size {
            return Err(format!(
                "budget n={} must be ≥ frontier_size m={}",
                self.budget, self.frontier_size
            ));
        }
        if self.eta <= 1.0 {
            return Err(format!("eta must be > 1 (got {})", self.eta));
        }
        if self.degree_cap == Some(0) {
            return Err("degree_cap must be ≥ 1".into());
        }
        Ok(())
    }
}

/// Counters describing one sampling run — used by tests, the cost-model
/// validation and the Fig. 4 bench.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SamplerStats {
    /// Pops performed (`n − m` in a clean run).
    pub pops: usize,
    /// Individual slot probes issued (valid + invalid).
    pub probes: usize,
    /// Probe rounds (batches of 1 or `LANES`).
    pub probe_rounds: usize,
    /// Dashboard compactions.
    pub cleanups: usize,
    /// Geometric growths (pathological-skew escape hatch).
    pub grows: usize,
    /// Frontier re-draws due to isolated replacement vertices.
    pub isolated_redraws: usize,
}

/// The Dashboard + index-array state for one sampling run.
///
/// Exposed (rather than hidden inside the sampler fn) so tests can drive
/// the state machine directly and so future samplers can reuse the
/// degree-proportional pop primitive, per the paper's future-work note on
/// supporting "a wider class of sampling algorithms".
pub struct Dashboard {
    /// Slot → owning vertex id (`INV` when invalid). Paper slot 1.
    vertex: Vec<u32>,
    /// Slot → offset from its block start. Paper slot 2 (sign trick
    /// replaced by an explicit IA lookup).
    offset: Vec<u32>,
    /// Slot → index of the owning entry in `IA`. Paper slot 3.
    owner: Vec<u32>,
    /// IA: block start per added vertex (paper IA slot 1).
    ia_start: Vec<u32>,
    /// IA: block length per added vertex.
    ia_len: Vec<u32>,
    /// IA: liveness flag (paper IA slot 2).
    ia_alive: Vec<bool>,
    /// IA: vertex id per entry (needed to re-fill after cleanup).
    ia_vertex: Vec<u32>,
    /// Used prefix of the slot arrays.
    used: usize,
    /// Total slots in live blocks (invariant: ≤ used).
    live_slots: usize,
    /// Per-vertex slot count bound.
    cap: u32,
    /// Run statistics.
    pub stats: SamplerStats,
}

impl Dashboard {
    /// Allocate a table for frontier size `m` on a graph with (possibly
    /// capped) average degree `d_eff`, enlargement factor `eta`.
    pub fn new(m: usize, d_eff: f64, eta: f64, cap: u32) -> Self {
        let capacity = ((eta * m as f64 * d_eff.max(1.0)).ceil() as usize).max(m * 2);
        Dashboard {
            vertex: vec![INV; capacity],
            offset: vec![0; capacity],
            owner: vec![0; capacity],
            ia_start: Vec::with_capacity(m * 2),
            ia_len: Vec::with_capacity(m * 2),
            ia_alive: Vec::with_capacity(m * 2),
            ia_vertex: Vec::with_capacity(m * 2),
            used: 0,
            live_slots: 0,
            cap,
            stats: SamplerStats::default(),
        }
    }

    /// Table capacity (`η·m·d̄` slots).
    pub fn capacity(&self) -> usize {
        self.vertex.len()
    }

    /// Currently used slot prefix.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Number of slots in live blocks.
    pub fn live_slots(&self) -> usize {
        self.live_slots
    }

    /// Number of live frontier vertices.
    pub fn live_vertices(&self) -> usize {
        self.ia_alive.iter().filter(|&&a| a).count()
    }

    /// Slot count a vertex of degree `deg` receives.
    #[inline]
    fn block_len(&self, deg: usize) -> u32 {
        (deg as u32).min(self.cap).max(1)
    }

    /// Append vertex `v` with degree `deg` to the frontier
    /// (para_ADD_TO_FRONTIER, Alg. 4 lines 25–33). Triggers cleanup or
    /// growth when the block does not fit (Alg. 3 lines 20–22).
    pub fn add_to_frontier(&mut self, v: u32, deg: usize) {
        let len = self.block_len(deg) as usize;
        if self.used + len > self.vertex.len() {
            self.cleanup();
            while self.used + len > self.vertex.len() {
                self.grow();
            }
        }
        let ia_idx = self.ia_start.len() as u32;
        let start = self.used;
        self.ia_start.push(start as u32);
        self.ia_len.push(len as u32);
        self.ia_alive.push(true);
        self.ia_vertex.push(v);
        // Chunk fills — the memset-like loops the paper vectorises.
        self.vertex[start..start + len].fill(v);
        for (k, o) in self.offset[start..start + len].iter_mut().enumerate() {
            *o = k as u32;
        }
        self.owner[start..start + len].fill(ia_idx);
        self.used += len;
        self.live_slots += len;
    }

    /// Pop one frontier vertex with probability proportional to its slot
    /// count (para_POP_FRONTIER, Alg. 4 lines 1–17). Returns the vertex.
    ///
    /// # Panics
    /// Panics if the frontier is empty (no live slots).
    pub fn pop_frontier(
        &mut self,
        scalar_rng: &mut Xorshift128Plus,
        lane_rng: &mut LaneRng,
        mode: ProbeMode,
    ) -> u32 {
        assert!(self.live_slots > 0, "pop from empty frontier");
        let idx = match mode {
            ProbeMode::Scalar => loop {
                self.stats.probe_rounds += 1;
                self.stats.probes += 1;
                let i = scalar_rng.next_range(self.used);
                if self.vertex[i] != INV {
                    break i;
                }
            },
            ProbeMode::Lanes => 'outer: loop {
                self.stats.probe_rounds += 1;
                self.stats.probes += LANES;
                let batch = lane_rng.next_batch_range(self.used);
                // Branch-light validity scan of the whole batch; take the
                // first valid probe (still uniform over valid slots).
                for &i in &batch {
                    if self.vertex[i] != INV {
                        break 'outer i;
                    }
                }
            },
        };
        let ia_idx = self.owner[idx] as usize;
        debug_assert_eq!(
            self.ia_start[ia_idx] as usize + self.offset[idx] as usize,
            idx
        );
        let v = self.vertex[idx];
        let start = self.ia_start[ia_idx] as usize;
        let len = self.ia_len[ia_idx] as usize;
        // Invalidate the whole block (vectorised fill).
        self.vertex[start..start + len].fill(INV);
        self.ia_alive[ia_idx] = false;
        self.live_slots -= len;
        self.stats.pops += 1;
        v
    }

    /// Compact live blocks to the front of the table
    /// (para_CLEANUP, Alg. 4 lines 18–24).
    pub fn cleanup(&mut self) {
        self.stats.cleanups += 1;
        let mut write = 0usize;
        let mut new_start = Vec::with_capacity(self.ia_start.len());
        let mut new_len = Vec::with_capacity(self.ia_start.len());
        let mut new_vertex = Vec::with_capacity(self.ia_start.len());
        for j in 0..self.ia_start.len() {
            if !self.ia_alive[j] {
                continue;
            }
            let start = self.ia_start[j] as usize;
            let len = self.ia_len[j] as usize;
            let ia_idx = new_start.len() as u32;
            // Left-compaction: destination is always ≤ source, so
            // copy_within over the same buffers is safe.
            self.vertex.copy_within(start..start + len, write);
            for (k, o) in self.offset[write..write + len].iter_mut().enumerate() {
                *o = k as u32;
            }
            self.owner[write..write + len].fill(ia_idx);
            new_start.push(write as u32);
            new_len.push(len as u32);
            new_vertex.push(self.ia_vertex[j]);
            write += len;
        }
        // Invalidate the tail so stale slots cannot be probed.
        self.vertex[write..self.used].fill(INV);
        self.ia_start = new_start;
        self.ia_len = new_len;
        self.ia_vertex = new_vertex;
        self.ia_alive = vec![true; self.ia_start.len()];
        self.used = write;
        debug_assert_eq!(self.live_slots, write);
    }

    /// Geometric growth escape hatch for pathological skew.
    fn grow(&mut self) {
        self.stats.grows += 1;
        let new_cap = self.vertex.len() * 2;
        self.vertex.resize(new_cap, INV);
        self.offset.resize(new_cap, 0);
        self.owner.resize(new_cap, 0);
    }

    /// Check internal invariants (test hook).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert!(self.used <= self.vertex.len());
        let mut live = 0usize;
        for j in 0..self.ia_start.len() {
            let start = self.ia_start[j] as usize;
            let len = self.ia_len[j] as usize;
            assert!(start + len <= self.used, "block beyond used prefix");
            if self.ia_alive[j] {
                live += len;
                for k in start..start + len {
                    assert_eq!(self.vertex[k], self.ia_vertex[j]);
                    assert_eq!(self.owner[k] as usize, j);
                    assert_eq!(self.offset[k] as usize, k - start);
                }
            } else {
                for k in start..start + len {
                    // Dead blocks are invalid unless already overwritten
                    // by a cleanup-compacted block.
                    let _ = k;
                }
            }
        }
        assert_eq!(live, self.live_slots, "live slot accounting");
        let valid = self.vertex[..self.used]
            .iter()
            .filter(|&&v| v != INV)
            .count();
        assert_eq!(valid, self.live_slots, "valid slots must equal live slots");
    }
}

/// The paper's frontier sampler: Dashboard-backed, degree-proportional
/// popping, uniform-neighbor replacement (Algorithm 3).
#[derive(Clone, Debug)]
pub struct DashboardSampler {
    cfg: FrontierConfig,
}

impl DashboardSampler {
    /// Create a sampler. Panics if the configuration is invalid.
    pub fn new(cfg: FrontierConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid FrontierConfig: {e}");
        }
        DashboardSampler { cfg }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> &FrontierConfig {
        &self.cfg
    }

    /// Run Algorithm 3, returning the sampled vertex set and run stats.
    pub fn sample_with_stats(&self, g: &dyn Topology, seed: u64) -> (Vec<u32>, SamplerStats) {
        let n_total = g.num_vertices();
        let m = self.cfg.frontier_size.min(n_total);
        let budget = self.cfg.budget.min(n_total);
        assert!(n_total > 0, "cannot sample an empty graph");

        let cap = self.cfg.degree_cap.unwrap_or(u32::MAX);
        // Effective average degree after capping — sizes the table.
        // Shard-backed topologies memoize the scan (see
        // `Topology::capped_mean_degree`); repeating it per batch would
        // flood a bounded shard cache.
        let d_eff = g.capped_mean_degree(cap);

        let mut scalar_rng = Xorshift128Plus::new(seed);
        let mut lane_rng = LaneRng::new(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let mut db = Dashboard::new(m, d_eff, self.cfg.eta, cap);

        // Alg. 3 lines 4–15: initial frontier, uniform without replacement.
        // Degrees are prescanned shard-grouped: the loop below must keep
        // its order (slot assignment feeds the RNG), but the degree
        // values it consumes are order-insensitive, and m random roots
        // probed in draw order are a worst-case scatter for a bounded
        // shard cache.
        let frontier0 = scalar_rng.sample_distinct(n_total, m);
        let deg0 = grouped_degrees(g, &frontier0);
        let mut in_vsub = BitSet::new(n_total);
        let mut vsub: Vec<u32> = Vec::with_capacity(budget);
        for (j, &v) in frontier0.iter().enumerate() {
            if in_vsub.insert(v as usize) {
                vsub.push(v);
            }
            if deg0[j] > 0 {
                db.add_to_frontier(v, deg0[j]);
            }
        }

        // Alg. 3 lines 16–25: main loop. The paper runs exactly n−m pops;
        // we additionally stop early if the budget of *distinct* vertices
        // is reached, and bail out if the frontier dies (graph of isolated
        // vertices).
        let mut pops_left = budget.saturating_sub(m);
        while pops_left > 0 && vsub.len() < budget {
            if db.live_slots() == 0 {
                // Frontier died (all replacements isolated): reseed it.
                let fresh = scalar_rng.sample_distinct(n_total, m.min(n_total));
                let fresh_degs = grouped_degrees(g, &fresh);
                let mut any = false;
                for (j, &v) in fresh.iter().enumerate() {
                    if fresh_degs[j] > 0 {
                        db.add_to_frontier(v, fresh_degs[j]);
                        any = true;
                    }
                }
                if !any {
                    break; // graph has no edges at all
                }
            }
            let vpop = db.pop_frontier(&mut scalar_rng, &mut lane_rng, self.cfg.probe_mode);
            // Alg. 2 line 5: uniform random neighbor of the popped vertex.
            let deg = g.degree(vpop);
            debug_assert!(deg > 0);
            let mut vnew = g.neighbor(vpop, scalar_rng.next_range(deg));
            // Documented deviation: redraw when the replacement is isolated.
            if g.degree(vnew) == 0 {
                db.stats.isolated_redraws += 1;
                vnew = frontier_redraw(g, &mut scalar_rng);
            }
            db.add_to_frontier(vnew, g.degree(vnew));
            if in_vsub.insert(vpop as usize) {
                vsub.push(vpop);
            }
            pops_left -= 1;
        }

        (vsub, db.stats.clone())
    }
}

/// Degrees of `vs`, probed one locality group (physical shard) at a time
/// with a prefetch hint one group ahead. The reads are order-insensitive,
/// so the scattered probe stream a random vertex set would produce
/// against a shard-backed topology collapses to one run per shard; for a
/// resident topology (one group) this is a plain loop.
fn grouped_degrees(g: &dyn Topology, vs: &[u32]) -> Vec<usize> {
    let mut degs = vec![0usize; vs.len()];
    if g.num_locality_groups() <= 1 || vs.len() <= 1 {
        for (i, &v) in vs.iter().enumerate() {
            degs[i] = g.degree(v);
        }
        return degs;
    }
    let mut keyed: Vec<(u32, u32)> = vs
        .iter()
        .enumerate()
        .map(|(i, &v)| (g.locality_group(v), i as u32))
        .collect();
    keyed.sort_unstable_by_key(|&(grp, _)| grp);
    let mut start = 0;
    while start < keyed.len() {
        let grp = keyed[start].0;
        let mut end = start;
        while end < keyed.len() && keyed[end].0 == grp {
            end += 1;
        }
        if end < keyed.len() {
            // One vertex is enough — the hint dedups to its shard.
            g.prefetch_hint(&[vs[keyed[end].1 as usize]]);
        }
        for &(_, i) in &keyed[start..end] {
            degs[i as usize] = g.degree(vs[i as usize]);
        }
        start = end;
    }
    degs
}

/// Draw a uniform random vertex with degree ≥ 1 (bounded retries, then a
/// linear fallback scan).
fn frontier_redraw(g: &dyn Topology, rng: &mut Xorshift128Plus) -> u32 {
    let n = g.num_vertices();
    for _ in 0..64 {
        let v = rng.next_range(n) as u32;
        if g.degree(v) > 0 {
            return v;
        }
    }
    (0..n as u32).find(|&v| g.degree(v) > 0).unwrap_or(0)
}

impl GraphSampler for DashboardSampler {
    fn sample_vertices(&self, g: &dyn Topology, seed: u64) -> Vec<u32> {
        self.sample_with_stats(g, seed).0
    }

    fn name(&self) -> &'static str {
        "frontier-dashboard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::{CsrGraph, GraphBuilder};

    fn ring(n: usize) -> CsrGraph {
        GraphBuilder::new(n)
            .add_edges((0..n as u32).map(|i| (i, (i + 1) % n as u32)))
            .build()
    }

    fn clique(n: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        GraphBuilder::new(n).add_edges(edges).build()
    }

    fn cfg(m: usize, n: usize) -> FrontierConfig {
        FrontierConfig {
            frontier_size: m,
            budget: n,
            ..FrontierConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        assert!(cfg(10, 100).validate().is_ok());
        assert!(cfg(0, 100).validate().is_err());
        assert!(cfg(10, 5).validate().is_err());
        let mut c = cfg(10, 100);
        c.eta = 1.0;
        assert!(c.validate().is_err());
        let mut c = cfg(10, 100);
        c.degree_cap = Some(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn dashboard_add_pop_roundtrip() {
        let mut db = Dashboard::new(2, 3.0, 2.0, u32::MAX);
        db.add_to_frontier(7, 3);
        db.add_to_frontier(9, 2);
        db.check_invariants();
        assert_eq!(db.live_slots(), 5);
        assert_eq!(db.live_vertices(), 2);
        let mut srng = Xorshift128Plus::new(1);
        let mut lrng = LaneRng::new(1);
        let v1 = db.pop_frontier(&mut srng, &mut lrng, ProbeMode::Scalar);
        assert!(v1 == 7 || v1 == 9);
        db.check_invariants();
        let v2 = db.pop_frontier(&mut srng, &mut lrng, ProbeMode::Lanes);
        assert_ne!(v1, v2);
        assert_eq!(db.live_slots(), 0);
        db.check_invariants();
    }

    #[test]
    #[should_panic(expected = "empty frontier")]
    fn pop_empty_panics() {
        let mut db = Dashboard::new(2, 3.0, 2.0, u32::MAX);
        let mut srng = Xorshift128Plus::new(1);
        let mut lrng = LaneRng::new(1);
        db.pop_frontier(&mut srng, &mut lrng, ProbeMode::Scalar);
    }

    #[test]
    fn cleanup_compacts_and_preserves_live() {
        let mut db = Dashboard::new(4, 2.0, 2.0, u32::MAX);
        let mut srng = Xorshift128Plus::new(2);
        let mut lrng = LaneRng::new(2);
        for v in 0..4u32 {
            db.add_to_frontier(v, 2 + v as usize);
        }
        let popped = db.pop_frontier(&mut srng, &mut lrng, ProbeMode::Scalar);
        let live_before = db.live_slots();
        db.cleanup();
        db.check_invariants();
        assert_eq!(db.live_slots(), live_before);
        assert_eq!(db.used(), live_before);
        // The popped vertex must be gone; the other three remain.
        assert_eq!(db.live_vertices(), 3);
        let mut remaining: Vec<u32> = Vec::new();
        while db.live_slots() > 0 {
            remaining.push(db.pop_frontier(&mut srng, &mut lrng, ProbeMode::Scalar));
        }
        remaining.sort_unstable();
        let expect: Vec<u32> = (0..4).filter(|&v| v != popped).collect();
        assert_eq!(remaining, expect);
    }

    #[test]
    fn degree_cap_limits_block() {
        let mut db = Dashboard::new(2, 3.0, 2.0, 5);
        db.add_to_frontier(0, 1000);
        assert_eq!(db.live_slots(), 5);
        db.check_invariants();
    }

    #[test]
    fn zero_degree_gets_one_slot() {
        // block_len clamps to ≥ 1 (the sampler itself never inserts
        // isolated vertices, but the structure must stay consistent).
        let mut db = Dashboard::new(2, 3.0, 2.0, u32::MAX);
        db.add_to_frontier(3, 0);
        assert_eq!(db.live_slots(), 1);
        db.check_invariants();
    }

    #[test]
    fn growth_on_pathological_skew() {
        // Tiny table (m=1, d̄=1 → capacity 2) + huge block forces growth.
        let mut db = Dashboard::new(1, 1.0, 2.0, u32::MAX);
        db.add_to_frontier(0, 100);
        assert!(db.stats.grows > 0);
        assert_eq!(db.live_slots(), 100);
        db.check_invariants();
    }

    #[test]
    fn sampler_respects_budget_and_dedup() {
        let g = ring(500);
        let s = DashboardSampler::new(cfg(20, 100));
        let (vs, stats) = s.sample_with_stats(&g, 7);
        assert!(vs.len() <= 100);
        assert!(vs.len() >= 20, "at least the initial frontier");
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vs.len(), "duplicates in V_sub");
        assert!(stats.pops > 0);
    }

    #[test]
    fn sampler_deterministic_per_seed() {
        let g = ring(300);
        let s = DashboardSampler::new(cfg(10, 60));
        assert_eq!(s.sample_vertices(&g, 5), s.sample_vertices(&g, 5));
        assert_ne!(s.sample_vertices(&g, 5), s.sample_vertices(&g, 6));
    }

    #[test]
    fn scalar_and_lane_modes_both_work() {
        let g = clique(50);
        for mode in [ProbeMode::Scalar, ProbeMode::Lanes] {
            let mut c = cfg(5, 30);
            c.probe_mode = mode;
            let s = DashboardSampler::new(c);
            let (vs, stats) = s.sample_with_stats(&g, 11);
            // Alg. 2 performs exactly n − m pops; popped vertices can
            // re-enter the frontier and be popped again, so |V_sub| lands
            // anywhere in [m, n].
            assert!(
                vs.len() >= 5 && vs.len() <= 30,
                "{mode:?}: got {}",
                vs.len()
            );
            assert!(stats.probes >= stats.probe_rounds);
        }
    }

    #[test]
    fn cleanup_happens_on_long_runs() {
        // Small eta → tight table → cleanups must fire.
        let g = clique(60);
        let mut c = cfg(10, 60);
        c.eta = 1.25;
        let s = DashboardSampler::new(c);
        let (_, stats) = s.sample_with_stats(&g, 3);
        assert!(
            stats.cleanups > 0,
            "expected cleanups with small eta: {stats:?}"
        );
    }

    #[test]
    fn pop_distribution_proportional_to_degree() {
        // Star + ring: hub 0 has degree 10, others ≤ 3. First pop from a
        // fresh frontier over the whole graph should select the hub with
        // probability ≈ 10/Σdeg. Empirically verify over many seeds.
        let n = 11;
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
        edges.extend((1..n as u32).map(|i| (i, if i + 1 < n as u32 { i + 1 } else { 1 })));
        let g = GraphBuilder::new(n).add_edges(edges).build();
        let total_deg: usize = (0..n as u32).map(|v| g.degree(v)).sum();
        let hub_p = g.degree(0) as f64 / total_deg as f64;

        let mut hub_first = 0usize;
        let trials = 4000;
        for seed in 0..trials {
            // Frontier = all vertices, one pop.
            let mut db = Dashboard::new(n, g.avg_degree(), 2.0, u32::MAX);
            for v in 0..n as u32 {
                db.add_to_frontier(v, g.degree(v));
            }
            let mut srng = Xorshift128Plus::new(seed as u64);
            let mut lrng = LaneRng::new(seed as u64 + 1);
            if db.pop_frontier(&mut srng, &mut lrng, ProbeMode::Lanes) == 0 {
                hub_first += 1;
            }
        }
        let observed = hub_first as f64 / trials as f64;
        assert!(
            (observed - hub_p).abs() < 0.03,
            "hub pop rate {observed:.3} vs expected {hub_p:.3}"
        );
    }

    #[test]
    fn budget_larger_than_graph_clamps() {
        let g = ring(30);
        let s = DashboardSampler::new(cfg(10, 10_000));
        let vs = s.sample_vertices(&g, 1);
        assert!(vs.len() <= 30);
    }

    #[test]
    fn subgraph_is_connectedish_on_ring() {
        // Frontier sampling on a ring should produce runs of consecutive
        // vertices — at minimum, more edges than a uniform-random set of
        // the same size would give in expectation.
        let g = ring(1000);
        let s = DashboardSampler::new(cfg(5, 100));
        let sub = s.sample_subgraph(&g, 9);
        assert!(
            sub.graph.num_edges() > 0,
            "frontier walk should keep some adjacency"
        );
    }

    #[test]
    fn stats_probe_accounting() {
        let g = clique(40);
        let mut c = cfg(8, 40);
        c.probe_mode = ProbeMode::Scalar;
        let s = DashboardSampler::new(c);
        let (_, st) = s.sample_with_stats(&g, 2);
        assert_eq!(st.probes, st.probe_rounds, "scalar mode: 1 probe per round");
        let mut c = cfg(8, 40);
        c.probe_mode = ProbeMode::Lanes;
        let s = DashboardSampler::new(c);
        let (_, st) = s.sample_with_stats(&g, 2);
        assert_eq!(
            st.probes,
            st.probe_rounds * LANES,
            "lane mode: LANES probes per round"
        );
    }
}
