//! Pipelined sampling: dedicated producer threads overlap subgraph
//! sampling with training compute.
//!
//! The synchronous path ([`crate::pool::SubgraphPool`]) stalls the whole
//! compute pool every `p_inter` iterations while a refill batch is
//! sampled, and the sampler sits idle the rest of the time. This module
//! decouples the two: `N` dedicated OS threads continuously sample ahead
//! of the consumer, so sampler latency hides behind compute (the paper's
//! Alg. 5 decoupling, taken from "refill when empty" to a true
//! producer–consumer pipeline).
//!
//! # Ticketing and determinism
//!
//! Workers draw [`Ticket`]s — `(batch, instance)` pairs in ascending
//! [`Ticket::sequence`] order — from a shared counter, and each subgraph
//! is sampled with the same `base_seed ⊕ hash(batch, instance)` seed
//! scheme as the synchronous pool. Ticket claiming is racy (whichever
//! worker is free takes the next one) but the *seed* of a ticket is a pure
//! function of its sequence number, so subgraph **contents** never depend
//! on worker count or interleaving.
//!
//! # Reorder buffer
//!
//! Workers finish out of order (sampling time varies per seed), so
//! delivery goes through a small reorder buffer: a `BTreeMap` keyed on the
//! ticket sequence. [`SamplerPipeline::pop`] only ever releases the next
//! in-order sequence, which makes the consumed stream identical to the
//! synchronous pool's pop order — batch-major, instance-minor — and hence
//! the training-loss trajectory bit-identical for a fixed seed.
//!
//! # Backpressure
//!
//! The buffer is bounded: `ready + in_flight < capacity` (default
//! `2·p_inter`, see [`PipelineConfig::capacity`]). Workers that would
//! overfill it park on a condvar until the consumer pops, so a fast
//! sampler cannot run unboundedly ahead of a slow trainer (subgraphs are
//! not free: budget-many vertices plus their edges each).
//!
//! # Shutdown protocol
//!
//! Dropping the pipeline sets a `stop` flag, wakes every parked worker,
//! and joins all worker threads. Workers re-check `stop` after every
//! condvar wake and before every claim, and a worker mid-sample finishes
//! its current subgraph first (sampling one subgraph is bounded work), so
//! drop — mid-epoch, at early-stop, or with the buffer full — cannot
//! deadlock. A worker that **panics** poisons the pipeline instead of
//! vanishing: the panic message is parked in the shared state, `stop` is
//! raised, and every subsequent [`SamplerPipeline::pop`] returns
//! [`PipelinePoisoned`] rather than blocking on a subgraph that will never
//! arrive.
//!
//! Worker threads are dedicated `std::thread` spawns, *not* rayon tasks:
//! nesting long-running sampler loops inside the compute pool would tie up
//! chunk-claiming workers the GEMMs need (the convoy limits noted in
//! ROADMAP), whereas OS threads just time-share with compute when cores
//! are scarce and overlap fully when they are not.

use crate::pool::Ticket;
use crate::GraphSampler;
use gsgcn_graph::{InducedSubgraph, Topology};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of a [`SamplerPipeline`].
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Dedicated sampler worker threads (≥ 1).
    pub workers: usize,
    /// Instances per seed batch (`p_inter`) — defines the ticket stream
    /// shared with the synchronous pool.
    pub p_inter: usize,
    /// Base seed of the `(batch, instance)` seed scheme.
    pub base_seed: u64,
    /// Backpressure bound on `ready + in-flight` subgraphs;
    /// `0` selects the default `max(2·p_inter, workers)`.
    pub capacity: usize,
}

impl PipelineConfig {
    fn effective_capacity(&self) -> usize {
        if self.capacity == 0 {
            (2 * self.p_inter).max(self.workers)
        } else {
            self.capacity
        }
    }
}

/// Error returned by [`SamplerPipeline::pop`] after a worker panicked.
///
/// The pipeline is permanently poisoned: the panic payload is preserved
/// and every subsequent pop fails with it instead of hanging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelinePoisoned {
    /// Stringified panic payload of the failed worker.
    pub message: String,
}

impl std::fmt::Display for PipelinePoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sampler worker panicked: {}", self.message)
    }
}

impl std::error::Error for PipelinePoisoned {}

/// Hook invoked by producer threads right after a subgraph lands in the
/// reorder buffer — i.e. *ahead* of the consumer popping it. The argument
/// is the subgraph's origin vertex set. Used to feed the shard
/// prefetcher with upcoming vertex ranges (advisory: must be cheap and
/// must not panic).
pub type ReadyHook = Arc<dyn Fn(&[u32]) + Send + Sync>;

/// Mutex-guarded pipeline state (see module docs for the protocol).
struct State {
    /// Bumped by [`SamplerPipeline::reset_with`]; deliveries from tickets
    /// claimed under an older generation are dropped.
    generation: u64,
    /// Next ticket sequence a producer will claim.
    next_ticket: u64,
    /// Next ticket sequence the consumer will release.
    next_out: u64,
    /// Reorder buffer: finished subgraphs keyed on ticket sequence.
    ready: BTreeMap<u64, InducedSubgraph>,
    /// Tickets claimed but not yet delivered to `ready`.
    in_flight: usize,
    /// Shutdown flag (drop or worker panic).
    stop: bool,
    /// Panic payload of the first worker that panicked.
    poisoned: Option<String>,
    /// Base seed of the `(batch, instance)` seed scheme (per generation).
    base_seed: u64,
    /// Sampler of the current generation (workers clone at claim time).
    sampler: Arc<dyn GraphSampler + Send + Sync>,
    /// Graph of the current generation (workers clone at claim time).
    graph: Arc<dyn Topology + Send + Sync>,
    /// Optional delivered-subgraph callback of the current generation.
    on_ready: Option<ReadyHook>,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when capacity frees up (consumer popped) or on shutdown.
    can_produce: Condvar,
    /// Signalled when a subgraph lands in `ready` or on shutdown/poison.
    can_consume: Condvar,
    /// Total wall-clock nanoseconds workers spent inside the sampler,
    /// summed across threads (overlap accounting; see
    /// [`SamplerPipeline::producer_sampling_secs`]).
    sampling_nanos: AtomicU64,
    capacity: usize,
    p_inter: usize,
}

impl Shared {
    /// Lock the state, recovering from a poisoned mutex: a worker that
    /// panicked inside the (trivial) critical section must not take the
    /// consumer down with an opaque `PoisonError`.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A running sampler pipeline: `workers` producer threads plus the
/// consumer-side cursor and stall accounting. See the module docs.
pub struct SamplerPipeline {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Subgraphs popped so far (consumer-side, for reporting).
    popped: u64,
    /// Cumulative seconds the consumer spent blocked in [`Self::pop`].
    stall_secs: f64,
}

impl SamplerPipeline {
    /// Spawn `cfg.workers` sampler threads over `sampler` × `graph`.
    ///
    /// The sampler and graph are shared by `Arc` because the workers are
    /// detached OS threads that outlive any single training call; both are
    /// read-only during sampling ([`GraphSampler`] samples through
    /// `&self`). Generic over the topology backend so the same pipeline
    /// runs over an `Arc<CsrGraph>` or an `Arc<GraphStore>`.
    pub fn spawn<S, G>(sampler: Arc<S>, graph: Arc<G>, cfg: PipelineConfig) -> Self
    where
        S: GraphSampler + Send + Sync + 'static,
        G: Topology + Send + Sync + 'static,
    {
        assert!(cfg.workers >= 1, "pipeline needs at least one worker");
        assert!(cfg.p_inter >= 1, "p_inter must be ≥ 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                generation: 0,
                next_ticket: 0,
                next_out: 0,
                ready: BTreeMap::new(),
                in_flight: 0,
                stop: false,
                poisoned: None,
                base_seed: cfg.base_seed,
                sampler,
                graph,
                on_ready: None,
            }),
            can_produce: Condvar::new(),
            can_consume: Condvar::new(),
            sampling_nanos: AtomicU64::new(0),
            capacity: cfg.effective_capacity(),
            p_inter: cfg.p_inter,
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gsgcn-sampler-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn sampler worker thread")
            })
            .collect();
        SamplerPipeline {
            shared,
            workers,
            popped: 0,
            stall_secs: 0.0,
        }
    }

    /// Rewind the ticket stream over a (possibly new) sampler × graph ×
    /// seed, **reusing the existing worker threads** instead of joining
    /// and respawning them — the cheap way to run a hyper-parameter
    /// sweep's `train()` calls over one pipeline.
    ///
    /// The generation counter makes this safe mid-stream: tickets claimed
    /// before the reset deliver into the void (their subgraphs are
    /// dropped, never mixed into the new stream), so the consumed stream
    /// after a reset is bit-identical to the one a freshly spawned
    /// pipeline would produce. `p_inter` and capacity are fixed at spawn;
    /// consumer-side counters (`popped`, stall/sampling times) keep
    /// accumulating across generations.
    ///
    /// # Panics
    /// Panics if the pipeline is poisoned — its workers are gone, so a
    /// reset could never produce again.
    pub fn reset_with<S, G>(&mut self, sampler: Arc<S>, graph: Arc<G>, base_seed: u64)
    where
        S: GraphSampler + Send + Sync + 'static,
        G: Topology + Send + Sync + 'static,
    {
        let mut st = self.shared.lock();
        if let Some(message) = &st.poisoned {
            panic!("cannot reset a poisoned pipeline: {message}");
        }
        st.generation += 1;
        st.next_ticket = 0;
        st.next_out = 0;
        st.ready.clear();
        st.base_seed = base_seed;
        st.sampler = sampler;
        st.graph = graph;
        st.on_ready = None;
        drop(st);
        // `ready` just emptied: every parked producer has room again.
        self.shared.can_produce.notify_all();
    }

    /// Install (or clear) the delivered-subgraph hook for the current
    /// generation. Producers call it with each subgraph's origin set the
    /// moment the subgraph enters the reorder buffer — ahead of the
    /// consumer — which is exactly when a shard prefetcher wants to hear
    /// about upcoming vertices. Cleared automatically by
    /// [`Self::reset_with`].
    pub fn set_on_ready(&self, hook: Option<ReadyHook>) {
        self.shared.lock().on_ready = hook;
    }

    /// Pop the next subgraph in ticket-sequence order, blocking until a
    /// worker delivers it. Returns [`PipelinePoisoned`] (forever after)
    /// once any worker has panicked.
    pub fn pop(&mut self) -> Result<InducedSubgraph, PipelinePoisoned> {
        let t0 = Instant::now();
        let mut st = self.shared.lock();
        loop {
            let want = st.next_out;
            if let Some(sub) = st.ready.remove(&want) {
                st.next_out += 1;
                drop(st);
                // Exactly one capacity slot freed: wake one parked
                // producer (shutdown/poison use notify_all separately).
                self.shared.can_produce.notify_one();
                self.popped += 1;
                self.stall_secs += t0.elapsed().as_secs_f64();
                return Ok(sub);
            }
            if let Some(message) = &st.poisoned {
                let err = PipelinePoisoned {
                    message: message.clone(),
                };
                drop(st);
                self.stall_secs += t0.elapsed().as_secs_f64();
                return Err(err);
            }
            st = self
                .shared
                .can_consume
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Subgraphs consumed so far.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of sampler worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Cumulative seconds the consumer spent blocked inside [`Self::pop`]
    /// — the sampling time the pipeline failed to hide.
    pub fn consumer_stall_secs(&self) -> f64 {
        self.stall_secs
    }

    /// Cumulative wall-clock seconds workers spent sampling, summed over
    /// threads. `producer_sampling_secs() - consumer_stall_secs()` is the
    /// sampling work hidden behind compute (clamped at 0: with more
    /// workers than cores the sums can race ahead of consumer time).
    pub fn producer_sampling_secs(&self) -> f64 {
        self.shared.sampling_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Subgraphs currently buffered or being sampled (test/debug probe;
    /// bounded by the configured capacity).
    pub fn pending(&self) -> usize {
        let st = self.shared.lock();
        st.ready.len() + st.in_flight
    }
}

impl Drop for SamplerPipeline {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.stop = true;
        }
        self.shared.can_produce.notify_all();
        self.shared.can_consume.notify_all();
        for handle in self.workers.drain(..) {
            // Worker panics were already caught and parked in `poisoned`;
            // a join error here can only be a panic that escaped the
            // catch, which there is nothing better to do with on drop.
            let _ = handle.join();
        }
    }
}

/// Producer loop: claim the next ticket (parking when the buffer is
/// full), sample it outside the lock, deliver into the reorder buffer.
/// Sampler, graph, seed and hook are snapshotted at claim time so a
/// concurrent [`SamplerPipeline::reset_with`] can swap them without
/// racing a mid-sample worker; the generation stamp makes the stale
/// delivery detectable.
fn worker_loop(shared: &Shared) {
    loop {
        // --- Claim phase (under lock, with backpressure) ---
        let (generation, seq, seed, sampler, graph) = {
            let mut st = shared.lock();
            loop {
                if st.stop {
                    return;
                }
                if st.ready.len() + st.in_flight < shared.capacity {
                    break;
                }
                st = shared
                    .can_produce
                    .wait(st)
                    .unwrap_or_else(|p| p.into_inner());
            }
            let seq = st.next_ticket;
            st.next_ticket += 1;
            st.in_flight += 1;
            let seed = Ticket::from_sequence(seq, shared.p_inter).seed(st.base_seed);
            (
                st.generation,
                seq,
                seed,
                Arc::clone(&st.sampler),
                Arc::clone(&st.graph),
            )
        };

        // --- Sample phase (no lock held) ---
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| sampler.sample_subgraph(&*graph, seed)));
        shared
            .sampling_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // --- Deliver phase ---
        let mut st = shared.lock();
        st.in_flight -= 1;
        match result {
            Ok(sub) => {
                if st.generation == generation {
                    // Announce before insertion — under the state lock, so
                    // the prefetcher hears the origin set strictly before
                    // any pop can release the subgraph. The hook is
                    // advisory: a panicking hook is dropped, never allowed
                    // to kill the worker (which would wedge `pop`).
                    if let Some(hook) = st.on_ready.clone() {
                        if catch_unwind(AssertUnwindSafe(|| hook(&sub.origin))).is_err() {
                            st.on_ready = None;
                        }
                    }
                    st.ready.insert(seq, sub);
                    drop(st);
                    shared.can_consume.notify_all();
                } else {
                    // Stale ticket from before a reset: the subgraph is
                    // dropped, but its capacity slot frees a producer.
                    drop(st);
                    shared.can_produce.notify_one();
                }
            }
            Err(payload) => {
                st.poisoned.get_or_insert(panic_message(payload));
                st.stop = true;
                drop(st);
                shared.can_consume.notify_all();
                shared.can_produce.notify_all();
                return;
            }
        }
    }
}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dashboard::{DashboardSampler, FrontierConfig};
    use crate::pool::SubgraphPool;
    use gsgcn_graph::{CsrGraph, GraphBuilder};
    use std::sync::atomic::AtomicUsize;

    fn ring(n: usize) -> CsrGraph {
        GraphBuilder::new(n)
            .add_edges((0..n as u32).map(|i| (i, (i + 1) % n as u32)))
            .build()
    }

    fn sampler() -> DashboardSampler {
        DashboardSampler::new(FrontierConfig {
            frontier_size: 5,
            budget: 25,
            ..FrontierConfig::default()
        })
    }

    fn cfg(workers: usize, p_inter: usize) -> PipelineConfig {
        PipelineConfig {
            workers,
            p_inter,
            base_seed: 42,
            capacity: 0,
        }
    }

    #[test]
    fn pipeline_matches_pool_order_across_worker_counts() {
        let g = Arc::new(ring(300));
        let s = Arc::new(sampler());
        let p_inter = 3;
        let n_pops = 11; // deliberately not a multiple of p_inter

        let mut pool = SubgraphPool::new(p_inter, 42);
        let reference: Vec<Vec<u32>> = (0..n_pops)
            .map(|_| pool.pop_or_refill(&*s, &*g).origin)
            .collect();

        for workers in [1usize, 2, 4] {
            let mut pipe =
                SamplerPipeline::spawn(Arc::clone(&s), Arc::clone(&g), cfg(workers, p_inter));
            let got: Vec<Vec<u32>> = (0..n_pops).map(|_| pipe.pop().unwrap().origin).collect();
            assert_eq!(got, reference, "{workers} workers diverged from pool order");
        }
    }

    #[test]
    fn backpressure_bounds_buffered_subgraphs() {
        let g = Arc::new(ring(300));
        let s = Arc::new(sampler());
        let p_inter = 2;
        let pipe = SamplerPipeline::spawn(s, g, cfg(4, p_inter));
        let capacity = (2 * p_inter).max(4);
        // Consume nothing: workers must fill to capacity and park.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let pending = pipe.pending();
        assert!(
            pending <= capacity,
            "pipeline ran ahead of backpressure: {pending} > {capacity}"
        );
        assert!(pending > 0, "workers produced nothing in 100ms");
    }

    #[test]
    fn drop_mid_stream_shuts_down_cleanly() {
        let g = Arc::new(ring(300));
        let s = Arc::new(sampler());
        for consumed in [0usize, 3] {
            let mut pipe = SamplerPipeline::spawn(Arc::clone(&s), Arc::clone(&g), cfg(2, 4));
            for _ in 0..consumed {
                pipe.pop().unwrap();
            }
            drop(pipe); // joins workers; deadlock here fails via test timeout
        }
    }

    /// Sampler that panics on its `panic_at`-th call (0-based).
    struct PanickySampler {
        inner: DashboardSampler,
        calls: AtomicUsize,
        panic_at: usize,
    }

    impl GraphSampler for PanickySampler {
        fn sample_vertices(&self, g: &dyn Topology, seed: u64) -> Vec<u32> {
            if self.calls.fetch_add(1, Ordering::SeqCst) == self.panic_at {
                panic!("injected sampler failure");
            }
            self.inner.sample_vertices(g, seed)
        }
        fn name(&self) -> &'static str {
            "panicky"
        }
    }

    #[test]
    fn panicking_worker_poisons_pop_instead_of_hanging() {
        let g = Arc::new(ring(300));
        for panic_at in [0usize, 3] {
            let s = Arc::new(PanickySampler {
                inner: sampler(),
                calls: AtomicUsize::new(0),
                panic_at,
            });
            let mut pipe = SamplerPipeline::spawn(s, Arc::clone(&g), cfg(2, 2));
            // Up to `capacity` subgraphs may already be in flight when the
            // panic hits; pops must hit the poison within that bound.
            let mut err = None;
            for _ in 0..16 {
                match pipe.pop() {
                    Ok(_) => continue,
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            let err = err.expect("pipeline never surfaced the worker panic");
            assert!(
                err.to_string().contains("injected sampler failure"),
                "unexpected message: {err}"
            );
            // Poison is sticky.
            assert_eq!(pipe.pop().unwrap_err(), err);
        }
    }

    #[test]
    fn reset_with_matches_fresh_spawn_bit_for_bit() {
        let g = Arc::new(ring(300));
        let s = Arc::new(sampler());
        let p_inter = 3;

        // Reference streams from freshly spawned pipelines.
        let fresh = |seed: u64, n: usize| -> Vec<Vec<u32>> {
            let mut pipe = SamplerPipeline::spawn(
                Arc::clone(&s),
                Arc::clone(&g),
                PipelineConfig {
                    workers: 2,
                    p_inter,
                    base_seed: seed,
                    capacity: 0,
                },
            );
            (0..n).map(|_| pipe.pop().unwrap().origin).collect()
        };
        let want_a = fresh(42, 7);
        let want_b = fresh(99, 7);

        // One pipeline, reset between "train() calls": streams identical,
        // including a reset taken mid-stream with subgraphs in flight.
        let mut pipe = SamplerPipeline::spawn(Arc::clone(&s), Arc::clone(&g), cfg(2, p_inter));
        pipe.reset_with(Arc::clone(&s), Arc::clone(&g), 42);
        let got_a: Vec<Vec<u32>> = (0..7).map(|_| pipe.pop().unwrap().origin).collect();
        assert_eq!(got_a, want_a, "first generation diverged");
        pipe.reset_with(Arc::clone(&s), Arc::clone(&g), 99);
        let got_b: Vec<Vec<u32>> = (0..7).map(|_| pipe.pop().unwrap().origin).collect();
        assert_eq!(got_b, want_b, "post-reset generation diverged");
        // And back again: no stale generation-0/1 subgraphs leak in.
        pipe.reset_with(Arc::clone(&s), Arc::clone(&g), 42);
        let again: Vec<Vec<u32>> = (0..7).map(|_| pipe.pop().unwrap().origin).collect();
        assert_eq!(again, want_a, "third generation diverged");
    }

    #[test]
    fn on_ready_hook_sees_origins_ahead_of_pop() {
        let g = Arc::new(ring(300));
        let s = Arc::new(sampler());
        let p_inter = 2;
        let mut pipe = SamplerPipeline::spawn(Arc::clone(&s), Arc::clone(&g), cfg(1, p_inter));
        let capacity = (2 * p_inter).max(1);
        let seen = Arc::new(Mutex::new(Vec::<Vec<u32>>::new()));
        let sink = Arc::clone(&seen);
        pipe.set_on_ready(Some(Arc::new(move |origin: &[u32]| {
            sink.lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(origin.to_vec());
        })));
        // Up to `capacity` subgraphs may have been delivered before the
        // hook was installed; everything claimed after the first pop is
        // guaranteed to announce through the hook before release.
        let popped: Vec<Vec<u32>> = (0..2 * capacity)
            .map(|_| pipe.pop().unwrap().origin)
            .collect();
        let seen = seen.lock().unwrap_or_else(|p| p.into_inner());
        for origin in &popped[capacity..] {
            assert!(seen.contains(origin), "popped origin never hit the hook");
        }
    }

    #[test]
    fn panicking_on_ready_hook_is_dropped_not_fatal() {
        let g = Arc::new(ring(300));
        let s = Arc::new(sampler());
        let mut pipe = SamplerPipeline::spawn(Arc::clone(&s), Arc::clone(&g), cfg(2, 2));
        pipe.set_on_ready(Some(Arc::new(|_: &[u32]| panic!("bad hook"))));
        // The stream keeps flowing: the broken hook is discarded, the
        // workers survive, and pops neither hang nor poison.
        for _ in 0..8 {
            pipe.pop().unwrap();
        }
    }

    /// Sampler that sleeps before delegating, so consumer pops measurably
    /// block and the stall accounting has something falsifiable to count.
    struct SlowSampler {
        inner: DashboardSampler,
        delay: std::time::Duration,
    }

    impl GraphSampler for SlowSampler {
        fn sample_vertices(&self, g: &dyn Topology, seed: u64) -> Vec<u32> {
            std::thread::sleep(self.delay);
            self.inner.sample_vertices(g, seed)
        }
        fn name(&self) -> &'static str {
            "slow"
        }
    }

    #[test]
    fn timing_counters_accumulate() {
        let g = Arc::new(ring(300));
        let delay = std::time::Duration::from_millis(20);
        let s = Arc::new(SlowSampler {
            inner: sampler(),
            delay,
        });
        let mut pipe = SamplerPipeline::spawn(s, g, cfg(1, 2));
        for _ in 0..4 {
            pipe.pop().unwrap();
        }
        assert_eq!(pipe.popped(), 4);
        assert_eq!(pipe.workers(), 1);
        assert!(pipe.producer_sampling_secs() >= 4.0 * delay.as_secs_f64() * 0.5);
        // With a single 20 ms/subgraph worker the consumer must have
        // genuinely blocked on at least the first pop: if blocked waits
        // were dropped from the accounting this would read ~0.
        assert!(
            pipe.consumer_stall_secs() >= 0.010,
            "stall {:.6}s — blocked waits not accounted?",
            pipe.consumer_stall_secs()
        );
    }
}
