//! Generalised weighted frontier sampling — the paper's future-work item
//! ("extend the parallel sampler implementation to support a wider class
//! of sampling algorithms").
//!
//! The Dashboard reduces *any* integer-weighted frontier distribution to
//! uniform slot probing: a vertex holding `w(v)` slots is popped with
//! probability `w(v)/Σw`. The classic frontier sampler uses
//! `w(v) = deg(v)`; this module generalises to `w(v) = clamp(round(
//! deg(v)^α), 1, cap)`:
//!
//! * `α = 1`  — the paper's degree-proportional sampler;
//! * `α = 0`  — uniform frontier popping (maximum hub suppression);
//! * `α ∈ (0,1)` — sub-linear degree bias, a smooth version of the
//!   paper's hard degree cap for skewed graphs;
//! * `α > 1` — super-linear bias (hub-seeking; useful for core-periphery
//!   exploration studies).

use crate::dashboard::{Dashboard, ProbeMode, SamplerStats};
use crate::rng::{LaneRng, Xorshift128Plus};
use crate::GraphSampler;
use gsgcn_graph::{BitSet, Topology};

/// Frontier sampler with `deg^α` pop weights on the Dashboard.
#[derive(Clone, Debug)]
pub struct WeightedFrontierSampler {
    /// Frontier size `m`.
    pub frontier_size: usize,
    /// Vertex budget `n`.
    pub budget: usize,
    /// Degree exponent `α ≥ 0`.
    pub alpha: f64,
    /// Enlargement factor `η > 1`.
    pub eta: f64,
    /// Slot cap per vertex.
    pub weight_cap: u32,
    /// Probe vectorisation.
    pub probe_mode: ProbeMode,
}

impl Default for WeightedFrontierSampler {
    fn default() -> Self {
        WeightedFrontierSampler {
            frontier_size: 1000,
            budget: 8000,
            alpha: 1.0,
            eta: 2.0,
            weight_cap: 10_000,
            probe_mode: ProbeMode::Lanes,
        }
    }
}

impl WeightedFrontierSampler {
    /// Pop weight of a vertex with degree `deg`.
    #[inline]
    pub fn weight(&self, deg: usize) -> u32 {
        if deg == 0 {
            return 0;
        }
        let w = (deg as f64).powf(self.alpha).round();
        (w as u32).clamp(1, self.weight_cap)
    }

    /// Run the sampler, returning the vertex set and stats.
    pub fn sample_with_stats(&self, g: &dyn Topology, seed: u64) -> (Vec<u32>, SamplerStats) {
        assert!(self.frontier_size >= 1, "frontier_size must be ≥ 1");
        assert!(self.alpha >= 0.0, "alpha must be non-negative");
        assert!(self.eta > 1.0, "eta must exceed 1");
        let n_total = g.num_vertices();
        assert!(n_total > 0, "cannot sample an empty graph");
        let m = self.frontier_size.min(n_total);
        let budget = self.budget.min(n_total).max(m);

        let w_eff = {
            let total: f64 = (0..n_total as u32)
                .map(|v| self.weight(g.degree(v)).max(1) as f64)
                .sum();
            total / n_total as f64
        };

        let mut scalar_rng = Xorshift128Plus::new(seed);
        let mut lane_rng = LaneRng::new(seed ^ 0x57ED_57ED);
        let mut db = Dashboard::new(m, w_eff, self.eta, self.weight_cap);

        let frontier0 = scalar_rng.sample_distinct(n_total, m);
        let mut in_vsub = BitSet::new(n_total);
        let mut vsub = Vec::with_capacity(budget);
        for &v in &frontier0 {
            if in_vsub.insert(v as usize) {
                vsub.push(v);
            }
            if g.degree(v) > 0 {
                db.add_to_frontier(v, self.weight(g.degree(v)) as usize);
            }
        }

        let mut pops_left = budget.saturating_sub(m);
        while pops_left > 0 && vsub.len() < budget {
            if db.live_slots() == 0 {
                let fresh = scalar_rng.sample_distinct(n_total, m.min(n_total));
                let mut any = false;
                for &v in &fresh {
                    if g.degree(v) > 0 {
                        db.add_to_frontier(v, self.weight(g.degree(v)) as usize);
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            let vpop = db.pop_frontier(&mut scalar_rng, &mut lane_rng, self.probe_mode);
            let deg = g.degree(vpop);
            debug_assert!(deg > 0);
            let mut vnew = g.neighbor(vpop, scalar_rng.next_range(deg));
            if g.degree(vnew) == 0 {
                // Isolated replacement: redraw uniformly (same policy as
                // the degree-proportional sampler).
                for _ in 0..64 {
                    vnew = scalar_rng.next_range(n_total) as u32;
                    if g.degree(vnew) > 0 {
                        break;
                    }
                }
            }
            db.add_to_frontier(vnew, self.weight(g.degree(vnew)) as usize);
            if in_vsub.insert(vpop as usize) {
                vsub.push(vpop);
            }
            pops_left -= 1;
        }
        (vsub, db.stats.clone())
    }
}

impl GraphSampler for WeightedFrontierSampler {
    fn sample_vertices(&self, g: &dyn Topology, seed: u64) -> Vec<u32> {
        self.sample_with_stats(g, seed).0
    }

    fn name(&self) -> &'static str {
        "frontier-weighted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::{CsrGraph, GraphBuilder};

    fn hub_graph() -> CsrGraph {
        // Hub 0 connected to 1..=20; ring over 1..=20.
        let mut edges: Vec<(u32, u32)> = (1..=20u32).map(|i| (0, i)).collect();
        edges.extend((1..=20u32).map(|i| (i, if i == 20 { 1 } else { i + 1 })));
        GraphBuilder::new(21).add_edges(edges).build()
    }

    fn sampler(alpha: f64) -> WeightedFrontierSampler {
        WeightedFrontierSampler {
            frontier_size: 5,
            budget: 12,
            alpha,
            ..WeightedFrontierSampler::default()
        }
    }

    #[test]
    fn weight_function_shapes() {
        let s = sampler(1.0);
        assert_eq!(s.weight(0), 0);
        assert_eq!(s.weight(7), 7);
        let s = sampler(0.0);
        assert_eq!(s.weight(100), 1);
        let s = sampler(0.5);
        assert_eq!(s.weight(16), 4);
        let mut s = sampler(1.0);
        s.weight_cap = 5;
        assert_eq!(s.weight(100), 5);
    }

    #[test]
    fn alpha_one_matches_degree_proportional_contract() {
        let g = hub_graph();
        let s = sampler(1.0);
        let (vs, stats) = s.sample_with_stats(&g, 3);
        assert!(vs.len() <= 12 && vs.len() >= 5);
        assert!(stats.pops > 0);
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vs.len());
    }

    #[test]
    fn alpha_zero_suppresses_hub_pops() {
        // With α = 0 every frontier vertex has one slot, so the hub is
        // popped no more often than anyone else. Compare hub pop
        // frequency across α over many seeds.
        let g = hub_graph();
        let hub_rate = |alpha: f64| -> f64 {
            let s = WeightedFrontierSampler {
                frontier_size: 21,
                budget: 22, // exactly one pop after the full-graph frontier
                alpha,
                ..WeightedFrontierSampler::default()
            };
            let mut hits = 0;
            let trials = 800;
            for seed in 0..trials {
                let (_, _) = s.sample_with_stats(&g, seed);
                // Re-run pop decision deterministically: the 22nd vertex
                // added to vsub is the popped one... instead, measure via
                // direct pops below.
                let mut db = Dashboard::new(21, 1.0, 2.0, s.weight_cap);
                for v in 0..21u32 {
                    db.add_to_frontier(v, s.weight(g.degree(v)) as usize);
                }
                let mut srng = Xorshift128Plus::new(seed);
                let mut lrng = LaneRng::new(seed + 1);
                if db.pop_frontier(&mut srng, &mut lrng, ProbeMode::Lanes) == 0 {
                    hits += 1;
                }
            }
            hits as f64 / trials as f64
        };
        let biased = hub_rate(1.0); // hub deg 20 vs others 3 → ≈ 20/80
        let flat = hub_rate(0.0); // ≈ 1/21
        assert!(
            biased > flat * 2.0,
            "α=1 hub rate {biased:.3} should far exceed α=0 rate {flat:.3}"
        );
        assert!((flat - 1.0 / 21.0).abs() < 0.05, "α=0 rate {flat:.3}");
    }

    #[test]
    fn deterministic_and_respects_budget() {
        let g = hub_graph();
        for alpha in [0.0, 0.5, 1.0, 2.0] {
            let s = sampler(alpha);
            let a = s.sample_vertices(&g, 9);
            let b = s.sample_vertices(&g, 9);
            assert_eq!(a, b, "α={alpha} not deterministic");
            assert!(a.len() <= 12);
            assert!(a.iter().all(|&v| v < 21));
        }
    }

    #[test]
    fn sublinear_alpha_flattens_hub_inclusion() {
        // On a skewed graph, subgraph overlap between draws should drop
        // as α decreases (fewer repeated hub visits).
        let g = hub_graph();
        let overlap = |alpha: f64| -> f64 {
            let s = sampler(alpha);
            let a: std::collections::HashSet<u32> = s.sample_vertices(&g, 1).into_iter().collect();
            let b: std::collections::HashSet<u32> = s.sample_vertices(&g, 2).into_iter().collect();
            a.intersection(&b).count() as f64 / a.len().max(1) as f64
        };
        // Not a strict inequality at this tiny size — just require both
        // configurations to run and produce sane overlap values.
        for alpha in [0.0, 0.5, 1.0] {
            let o = overlap(alpha);
            assert!((0.0..=1.0).contains(&o), "α={alpha}: overlap {o}");
        }
    }
}
