//! Deterministic random-number generation for the samplers.
//!
//! Two generators:
//!
//! * [`Xorshift128Plus`] — a fast scalar PRNG, seeded via SplitMix64.
//! * [`LaneRng`] — `LANES` independent xorshift128+ streams advanced in
//!   lockstep. The state lives in plain fixed-size arrays and the update
//!   is branch-free, so LLVM compiles [`LaneRng::next_batch`] to SIMD —
//!   this is the reproduction of the paper's AVX probe vectorisation
//!   (Sec. IV-C: "use AVX instructions to parallelize within a single
//!   sampler").
//!
//! Range reduction uses the multiply-shift trick (`(x·n) >> 64`), which is
//! branch-free and avoids the modulo's division. The induced bias is
//! ≤ n·2⁻⁶⁴ — immaterial for sampling use.

/// SplitMix64 step — used to expand one `u64` seed into stream states.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Scalar xorshift128+ generator.
#[derive(Clone, Debug)]
pub struct Xorshift128Plus {
    s0: u64,
    s1: u64,
}

impl Xorshift128Plus {
    /// Seed from a single `u64` (expanded via SplitMix64; never all-zero).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s0 = splitmix64(&mut sm);
        let s1 = splitmix64(&mut sm);
        Xorshift128Plus {
            s0: s0 | 1, // avoid the all-zero state
            s1,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Uniform integer in `[0, n)` via multiply-shift. `n` must be > 0.
    #[inline]
    pub fn next_range(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates sample of `k` distinct values from `0..n`
    /// (hash-based partial shuffle: O(k) memory).
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<u32> {
        assert!(k <= n, "cannot sample {k} distinct from {n}");
        let mut swapped: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let j = i + self.next_range(n - i);
            let vi = *swapped.get(&i).unwrap_or(&i);
            let vj = *swapped.get(&j).unwrap_or(&j);
            out.push(vj as u32);
            swapped.insert(j, vi);
        }
        out
    }
}

/// Number of SIMD lanes the batched generator advances together. Matches
/// the paper's `p_intra = 8` (AVX2: eight 32-bit operations per
/// instruction).
pub const LANES: usize = 8;

/// `LANES` xorshift128+ streams in structure-of-arrays form.
#[derive(Clone, Debug)]
pub struct LaneRng {
    s0: [u64; LANES],
    s1: [u64; LANES],
}

impl LaneRng {
    /// Seed all lanes from one `u64` (each lane gets an independent
    /// SplitMix64-derived state).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s0 = [0u64; LANES];
        let mut s1 = [0u64; LANES];
        for l in 0..LANES {
            s0[l] = splitmix64(&mut sm) | 1;
            s1[l] = splitmix64(&mut sm);
        }
        LaneRng { s0, s1 }
    }

    /// Advance every lane once; returns the batch of raw values.
    /// Branch-free fixed-width loop — auto-vectorises.
    #[inline]
    pub fn next_batch(&mut self) -> [u64; LANES] {
        let mut out = [0u64; LANES];
        for (l, slot) in out.iter_mut().enumerate() {
            let mut x = self.s0[l];
            let y = self.s1[l];
            self.s0[l] = y;
            x ^= x << 23;
            self.s1[l] = x ^ y ^ (x >> 17) ^ (y >> 26);
            *slot = self.s1[l].wrapping_add(y);
        }
        out
    }

    /// Batch of uniform indices in `[0, n)`.
    #[inline]
    pub fn next_batch_range(&mut self, n: usize) -> [usize; LANES] {
        let raw = self.next_batch();
        let mut out = [0usize; LANES];
        for l in 0..LANES {
            out[l] = ((raw[l] as u128 * n as u128) >> 64) as usize;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_deterministic() {
        let mut a = Xorshift128Plus::new(1);
        let mut b = Xorshift128Plus::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xorshift128Plus::new(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut rng = Xorshift128Plus::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.next_range(10);
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of [0,10) should appear"
        );
    }

    #[test]
    fn range_uniformity_rough() {
        let mut rng = Xorshift128Plus::new(4);
        let n = 16;
        let trials = 160_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            counts[rng.next_range(n)] += 1;
        }
        let expect = trials / n;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() < expect as f64 * 0.1,
                "bucket {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xorshift128Plus::new(5);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn sample_distinct_no_duplicates() {
        let mut rng = Xorshift128Plus::new(6);
        for k in [0, 1, 5, 50, 100] {
            let s = rng.sample_distinct(100, k);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in sample of {k}");
            assert!(s.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn sample_distinct_full_population() {
        let mut rng = Xorshift128Plus::new(7);
        let mut s = rng.sample_distinct(10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn lanes_independent_and_deterministic() {
        let mut a = LaneRng::new(9);
        let mut b = LaneRng::new(9);
        let (ba, bb) = (a.next_batch(), b.next_batch());
        assert_eq!(ba, bb);
        // Lanes differ from each other.
        assert!(ba.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn lane_range_bounds() {
        let mut rng = LaneRng::new(11);
        for _ in 0..100 {
            for idx in rng.next_batch_range(37) {
                assert!(idx < 37);
            }
        }
    }

    #[test]
    fn lane_uniformity_rough() {
        let mut rng = LaneRng::new(13);
        let n = 8;
        let mut counts = vec![0usize; n];
        for _ in 0..20_000 {
            for idx in rng.next_batch_range(n) {
                counts[idx] += 1;
            }
        }
        let expect = 20_000 * LANES / n;
        for &c in &counts {
            assert!((c as f64 - expect as f64).abs() < expect as f64 * 0.1);
        }
    }
}
