//! Naive frontier sampler — the `O(m)`-per-pop implementation the paper's
//! Sec. IV-A dismisses ("a straightforward implementation requires
//! `O(m·n)` work to sample a single G_sub, which is expensive given
//! m = 1000").
//!
//! Kept for two reasons:
//! 1. **Ablation baseline** (experiment A1): the Dashboard's serial
//!    complexity win is demonstrated against this implementation.
//! 2. **Distribution ground truth**: it samples the frontier by exact
//!    prefix-sum inversion, so statistical tests can compare the
//!    Dashboard's probing distribution against it.

use crate::rng::Xorshift128Plus;
use crate::GraphSampler;
use gsgcn_graph::{BitSet, Topology};

/// Frontier sampler with per-pop linear scan over the frontier.
#[derive(Clone, Debug)]
pub struct NaiveFrontierSampler {
    /// Frontier size `m`.
    pub frontier_size: usize,
    /// Vertex budget `n`.
    pub budget: usize,
    /// Optional degree cap (same semantics as the Dashboard sampler).
    pub degree_cap: Option<u32>,
}

impl NaiveFrontierSampler {
    pub fn new(frontier_size: usize, budget: usize) -> Self {
        assert!(frontier_size >= 1 && budget >= frontier_size);
        NaiveFrontierSampler {
            frontier_size,
            budget,
            degree_cap: None,
        }
    }
}

impl GraphSampler for NaiveFrontierSampler {
    fn sample_vertices(&self, g: &dyn Topology, seed: u64) -> Vec<u32> {
        let n_total = g.num_vertices();
        assert!(n_total > 0, "cannot sample an empty graph");
        let m = self.frontier_size.min(n_total);
        let budget = self.budget.min(n_total);
        let cap = self.degree_cap.unwrap_or(u32::MAX) as usize;
        let weight = |v: u32| g.degree(v).min(cap) as f64;

        let mut rng = Xorshift128Plus::new(seed);
        let mut frontier = rng.sample_distinct(n_total, m);
        let mut in_vsub = BitSet::new(n_total);
        let mut vsub = Vec::with_capacity(budget);
        for &v in &frontier {
            if in_vsub.insert(v as usize) {
                vsub.push(v);
            }
        }

        let mut pops_left = budget.saturating_sub(m);
        while pops_left > 0 && vsub.len() < budget {
            // Exact degree-proportional selection: prefix-sum inversion.
            let total: f64 = frontier.iter().map(|&v| weight(v)).sum();
            if total <= 0.0 {
                break; // frontier of isolated vertices only
            }
            let target = rng.next_f64() * total;
            let mut acc = 0.0;
            let mut pick = frontier.len() - 1;
            for (i, &v) in frontier.iter().enumerate() {
                acc += weight(v);
                if target < acc {
                    pick = i;
                    break;
                }
            }
            let vpop = frontier[pick];
            let deg = g.degree(vpop);
            if deg == 0 {
                // Weight 0 vertices are never picked; defensive only.
                frontier.swap_remove(pick);
                continue;
            }
            let mut vnew = g.neighbor(vpop, rng.next_range(deg));
            if g.degree(vnew) == 0 {
                // Same isolated-replacement redraw as the Dashboard sampler.
                for _ in 0..64 {
                    vnew = rng.next_range(n_total) as u32;
                    if g.degree(vnew) > 0 {
                        break;
                    }
                }
            }
            frontier[pick] = vnew;
            if in_vsub.insert(vpop as usize) {
                vsub.push(vpop);
            }
            pops_left -= 1;
        }
        vsub
    }

    fn name(&self) -> &'static str {
        "frontier-naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::{CsrGraph, GraphBuilder};

    fn ring(n: usize) -> CsrGraph {
        GraphBuilder::new(n)
            .add_edges((0..n as u32).map(|i| (i, (i + 1) % n as u32)))
            .build()
    }

    #[test]
    fn respects_budget_and_distinct() {
        let g = ring(200);
        let s = NaiveFrontierSampler::new(10, 50);
        let vs = s.sample_vertices(&g, 3);
        assert!(vs.len() <= 50 && vs.len() >= 10);
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vs.len());
    }

    #[test]
    fn deterministic() {
        let g = ring(100);
        let s = NaiveFrontierSampler::new(5, 30);
        assert_eq!(s.sample_vertices(&g, 1), s.sample_vertices(&g, 1));
    }

    #[test]
    fn first_pop_distribution_matches_degree() {
        // Hub graph: vertex 0 has degree 8, spokes have degree 1 each.
        let g = GraphBuilder::new(9)
            .add_edges((1..9u32).map(|i| (0, i)))
            .build();
        // Frontier = everything; the first popped vertex should be the hub
        // half the time (8 / 16 total degree).
        let mut hub = 0;
        let trials = 3000;
        for seed in 0..trials {
            let s = NaiveFrontierSampler::new(9, 9);
            // With m = n = budget, no pops happen; use budget m+1 style:
            let s = NaiveFrontierSampler { budget: 9, ..s };
            let _ = s; // silence
                       // Drive the internals directly: a single exact pop.
            let mut rng = Xorshift128Plus::new(seed);
            let frontier: Vec<u32> = (0..9).collect();
            let total: f64 = frontier.iter().map(|&v| g.degree(v) as f64).sum();
            let target = rng.next_f64() * total;
            let mut acc = 0.0;
            let mut pick = frontier.len() - 1;
            for (i, &v) in frontier.iter().enumerate() {
                acc += g.degree(v) as f64;
                if target < acc {
                    pick = i;
                    break;
                }
            }
            if frontier[pick] == 0 {
                hub += 1;
            }
        }
        let rate = hub as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.05, "hub rate {rate}");
    }

    #[test]
    fn degree_cap_flattens_distribution() {
        let g = GraphBuilder::new(9)
            .add_edges((1..9u32).map(|i| (0, i)))
            .build();
        let s = NaiveFrontierSampler {
            frontier_size: 2,
            budget: 6,
            degree_cap: Some(1),
        };
        // Just verify it runs and respects the budget with a cap.
        let vs = s.sample_vertices(&g, 5);
        assert!(vs.len() <= 6);
    }
}
