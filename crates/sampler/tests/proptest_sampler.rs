//! Property-based tests of the Dashboard state machine and samplers.

use gsgcn_graph::builder::from_edges;
use gsgcn_sampler::alt::{
    ForestFireSampler, RandomWalkSampler, UniformEdgeSampler, UniformNodeSampler,
};
use gsgcn_sampler::cost_model::SamplerCostModel;
use gsgcn_sampler::dashboard::{Dashboard, DashboardSampler, FrontierConfig, ProbeMode};
use gsgcn_sampler::naive::NaiveFrontierSampler;
use gsgcn_sampler::rng::{LaneRng, Xorshift128Plus};
use gsgcn_sampler::GraphSampler;
use proptest::prelude::*;

/// Strategy: a connected-ish random graph (ring + chords).
fn graph_strategy() -> impl Strategy<Value = gsgcn_graph::CsrGraph> {
    (
        5usize..80,
        proptest::collection::vec((0u32..80, 0u32..80), 0..160),
    )
        .prop_map(|(n, extra)| {
            let mut edges: Vec<(u32, u32)> =
                (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
            edges.extend(
                extra
                    .into_iter()
                    .filter(|&(a, b)| (a as usize) < n && (b as usize) < n && a != b),
            );
            from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A random add/pop/cleanup sequence keeps the Dashboard invariants.
    #[test]
    fn dashboard_state_machine(ops in proptest::collection::vec(0u8..10, 1..120), seed in any::<u64>()) {
        let mut db = Dashboard::new(8, 3.0, 2.0, u32::MAX);
        let mut srng = Xorshift128Plus::new(seed);
        let mut lrng = LaneRng::new(seed ^ 1);
        let mut live = std::collections::HashMap::<u32, usize>::new(); // vertex → live count
        let mut next_vertex = 0u32;
        for op in ops {
            if op < 6 || live.is_empty() {
                // add with degree 1..=6
                let deg = (op as usize % 6) + 1;
                db.add_to_frontier(next_vertex, deg);
                *live.entry(next_vertex).or_insert(0) += 1;
                next_vertex += 1;
            } else if op < 9 {
                let v = db.pop_frontier(&mut srng, &mut lrng,
                    if op == 6 { ProbeMode::Scalar } else { ProbeMode::Lanes });
                let c = live.get_mut(&v).expect("popped vertex must be live");
                *c -= 1;
                if *c == 0 { live.remove(&v); }
            } else {
                db.cleanup();
            }
            db.check_invariants();
            prop_assert_eq!(db.live_vertices(), live.values().sum::<usize>());
        }
    }

    /// The frontier sampler's output is always a distinct, in-range set
    /// within budget.
    #[test]
    fn dashboard_sampler_output_valid(g in graph_strategy(), seed in any::<u64>()) {
        let n = g.num_vertices();
        let budget = (n / 2).max(2);
        let s = DashboardSampler::new(FrontierConfig {
            frontier_size: (budget / 2).max(1),
            budget,
            ..FrontierConfig::default()
        });
        let vs = s.sample_vertices(&g, seed);
        prop_assert!(vs.len() <= budget);
        prop_assert!(!vs.is_empty());
        prop_assert!(vs.iter().all(|&v| (v as usize) < n));
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), vs.len());
    }

    /// Scalar and lane probing sample the same *distribution family*:
    /// both respect budget/distinctness on arbitrary graphs.
    #[test]
    fn probe_modes_equivalent_contract(g in graph_strategy(), seed in any::<u64>()) {
        for mode in [ProbeMode::Scalar, ProbeMode::Lanes] {
            let s = DashboardSampler::new(FrontierConfig {
                frontier_size: 3,
                budget: 10.min(g.num_vertices()),
                probe_mode: mode,
                ..FrontierConfig::default()
            });
            let vs = s.sample_vertices(&g, seed);
            prop_assert!(!vs.is_empty());
        }
    }

    /// Degree caps never break sampling.
    #[test]
    fn degree_cap_safe(g in graph_strategy(), cap in 1u32..8, seed in any::<u64>()) {
        let s = DashboardSampler::new(FrontierConfig {
            frontier_size: 4.min(g.num_vertices()),
            budget: 16.min(g.num_vertices()),
            degree_cap: Some(cap),
            ..FrontierConfig::default()
        });
        let vs = s.sample_vertices(&g, seed);
        prop_assert!(!vs.is_empty());
    }

    /// All alternative samplers satisfy the GraphSampler contract.
    #[test]
    fn alt_samplers_contract(g in graph_strategy(), seed in any::<u64>()) {
        let budget = (g.num_vertices() / 2).max(1);
        let samplers: Vec<Box<dyn GraphSampler>> = vec![
            Box::new(UniformNodeSampler { budget }),
            Box::new(UniformEdgeSampler { budget }),
            Box::new(RandomWalkSampler { walkers: 2, budget, restart_prob: 0.1 }),
            Box::new(ForestFireSampler { budget, burn_prob: 0.6 }),
            Box::new(NaiveFrontierSampler::new(budget.div_ceil(2), budget)),
        ];
        for s in &samplers {
            let vs = s.sample_vertices(&g, seed);
            prop_assert!(vs.len() <= budget.max(1), "{} overshot", s.name());
            let mut sorted = vs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), vs.len(), "{} produced duplicates", s.name());
            prop_assert!(vs.iter().all(|&v| (v as usize) < g.num_vertices()));
            // Determinism.
            prop_assert_eq!(vs, s.sample_vertices(&g, seed));
        }
    }

    /// Theorem 1: the modeled speedup respects the bound for random
    /// parameters.
    #[test]
    fn theorem1_bound_random_params(
        eta in 1.2f64..5.0,
        d in 2.0f64..200.0,
        eps in 0.1f64..2.0,
        n in 2000usize..20000,
    ) {
        let m = SamplerCostModel::unit(eta, d);
        let pmax = m.theorem1_max_p(eps);
        let mut p = 1usize;
        while (p as f64) <= pmax && p <= 512 {
            let s = m.speedup(n, n / 10, p);
            prop_assert!(
                s >= m.theorem1_guarantee(p, eps) - 1e-9,
                "η={eta} d={d} ε={eps} p={p}: {s}"
            );
            p += 7; // sparse sweep for speed
        }
    }

    /// The scalar RNG's range reduction is always in bounds.
    #[test]
    fn rng_range_in_bounds(seed in any::<u64>(), n in 1usize..1000) {
        let mut rng = Xorshift128Plus::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_range(n) < n);
        }
    }

    /// sample_distinct always returns exactly k distinct in-range values.
    #[test]
    fn sample_distinct_contract(seed in any::<u64>(), n in 1usize..200, frac in 0.0f64..1.0) {
        let k = ((n as f64 * frac) as usize).min(n);
        let mut rng = Xorshift128Plus::new(seed);
        let s = rng.sample_distinct(n, k);
        prop_assert_eq!(s.len(), k);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(s.iter().all(|&x| (x as usize) < n));
    }

    /// Sampled batches are bit-identical whether the topology behind the
    /// `Topology` trait is the resident CSR graph or the mmap shard
    /// store — under a tiny cache budget, so eviction churn is in play.
    #[test]
    fn sampler_batches_backend_invariant(g in graph_strategy(), seed in any::<u64>(), shards in 1usize..6) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gsgcn-proptest-sampler-store-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        gsgcn_graph::store::shard::write_store(&dir, &g, None, None, shards).unwrap();
        let store = gsgcn_graph::GraphStore::open_with_budget(&dir, 4 * 1024).unwrap();
        let budget = 16.min(g.num_vertices());
        let s = DashboardSampler::new(FrontierConfig {
            frontier_size: (budget / 2).max(1),
            budget,
            ..FrontierConfig::default()
        });
        let from_mem = s.sample_subgraph(&g, seed);
        let from_store = s.sample_subgraph(&store, seed);
        prop_assert_eq!(from_mem.origin, from_store.origin);
        prop_assert_eq!(from_mem.graph, from_store.graph);
        std::fs::remove_dir_all(&dir).ok();
    }
}
