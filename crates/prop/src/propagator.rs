//! Mean-aggregation operator with forward and backward passes.
//!
//! Forward (Alg. 1 line 7, with `Â = D⁻¹A`):
//! `Y[v] = (1/deg(v)) Σ_{u∈N(v)} H[u]` — the mean of neighbor features.
//!
//! Backward: with `Y = Â·H`, the gradient is `dH = Âᵀ·dY`, i.e.
//! `dH[u] = Σ_{v∈N(u)} (1/deg(v)) · dY[v]`. On our symmetric graphs this
//! is implemented by pre-scaling `dY` rows by `1/deg` and running the same
//! aggregation kernel — one kernel, both directions.

use crate::fused::{AggregatedRows, AggregatedRowsBf16};
use crate::kernels;
use gsgcn_graph::partition::{range_partition, VertexPartition};
use gsgcn_graph::CsrGraph;
use gsgcn_tensor::view::{MatMut, MatRef};
use gsgcn_tensor::{gemm, scratch, DMatrix};
use rayon::prelude::*;

/// Kernel selection for the propagation step.
#[derive(Clone, Debug)]
pub enum PropMode {
    /// Conventional row-parallel kernel (baseline in the A2 ablation).
    Naive,
    /// Algorithm 6 — feature-only partitioning sized to `cache_bytes`
    /// (the paper's per-core L2: 256 KiB).
    FeaturePartitioned {
        /// Fast-memory size the per-task working set must fit in.
        cache_bytes: usize,
    },
    /// `P × Q` two-dimensional partitioning (ablation alternative).
    TwoD {
        /// Graph partitions.
        p: usize,
        /// Feature partitions.
        q: usize,
    },
    /// Working-set–adaptive: row-parallel while the whole source matrix
    /// is LLC-resident (`bytes·n·f ≤ llc_bytes`), Algorithm 6 beyond.
    ///
    /// The paper's 2016 Xeon had 256 KiB of effective per-core fast
    /// memory, making Alg. 6 pay at subgraph scale; on CPUs with tens of
    /// MB of shared L3 the crossover moves to much larger `n·f` (measured
    /// in the A2 ablation), so production code picks per matrix.
    Auto {
        /// LLC size below which the row-parallel kernel is used.
        llc_bytes: usize,
        /// Per-core fast-memory size handed to Alg. 6 beyond that.
        cache_bytes: usize,
    },
}

impl Default for PropMode {
    fn default() -> Self {
        PropMode::Auto {
            llc_bytes: 16 * 1024 * 1024,
            cache_bytes: 256 * 1024,
        }
    }
}

/// The mean-aggregation propagation operator.
#[derive(Clone, Debug, Default)]
pub struct FeaturePropagator {
    mode: PropMode,
}

impl FeaturePropagator {
    pub fn new(mode: PropMode) -> Self {
        FeaturePropagator { mode }
    }

    /// The configured mode.
    pub fn mode(&self) -> &PropMode {
        &self.mode
    }

    /// Accumulate the unnormalised neighbor sum into `y` (`y += A·h`).
    fn aggregate_acc(
        &self,
        g: &CsrGraph,
        h: &DMatrix,
        partition: Option<&VertexPartition>,
        y: &mut DMatrix,
    ) {
        match &self.mode {
            PropMode::Naive => kernels::aggregate_naive_into(g, h, y),
            PropMode::FeaturePartitioned { cache_bytes } => {
                kernels::aggregate_feature_partitioned_into(g, h, *cache_bytes, y)
            }
            PropMode::Auto {
                llc_bytes,
                cache_bytes,
            } => {
                let working_set = std::mem::size_of::<f32>() * h.rows() * h.cols();
                if working_set <= *llc_bytes {
                    kernels::aggregate_naive_into(g, h, y)
                } else {
                    kernels::aggregate_feature_partitioned_into(g, h, *cache_bytes, y)
                }
            }
            PropMode::TwoD { p, q } => {
                let owned;
                let part = match partition {
                    Some(p) => p,
                    None => {
                        owned = range_partition(g.num_vertices(), *p);
                        &owned
                    }
                };
                kernels::aggregate_2d_into(g, h, part, *q, y)
            }
        }
    }

    /// Forward mean aggregation: `Y = D⁻¹·A·H`.
    pub fn forward(&self, g: &CsrGraph, h: &DMatrix) -> DMatrix {
        let mut y = DMatrix::zeros(g.num_vertices(), h.cols());
        self.forward_into(g, h, &mut y);
        y
    }

    /// In-place forward: overwrite `out` with `D⁻¹·A·H`, reusing its
    /// buffer (reshaped as needed; no allocation once warm).
    pub fn forward_into(&self, g: &CsrGraph, h: &DMatrix, out: &mut DMatrix) {
        out.ensure_shape(g.num_vertices(), h.cols());
        out.fill(0.0);
        self.aggregate_acc(g, h, None, out);
        scale_rows_by_inv_degree(g, out);
    }

    /// Backward pass: given `dY`, return `dH = Âᵀ·dY = A·D⁻¹·dY`.
    pub fn backward(&self, g: &CsrGraph, dy: &DMatrix) -> DMatrix {
        let mut out = DMatrix::zeros(g.num_vertices(), dy.cols());
        self.backward_acc_into(g, dy, &mut out);
        out
    }

    /// Accumulating in-place backward: `out += Âᵀ·dY`. The pre-scaled
    /// copy of `dY` lives in thread-local scratch, so a warm training
    /// loop performs no allocation. Accumulation (rather than overwrite)
    /// lets the GCN layer fold the `+ dH_self` term in for free.
    pub fn backward_acc_into(&self, g: &CsrGraph, dy: &DMatrix, out: &mut DMatrix) {
        assert_eq!(
            out.shape(),
            (g.num_vertices(), dy.cols()),
            "output shape mismatch"
        );
        // Pre-scale rows of dY by 1/deg, then unnormalised aggregate.
        scratch::with_matrix(dy.rows(), dy.cols(), |scaled| {
            scaled.copy_from(dy);
            scale_rows_by_inv_degree(g, scaled);
            self.aggregate_acc(g, scaled, None, out);
        });
    }

    /// Fused forward: `C = β·C + (Â·H)·W` in one cache pass — the
    /// aggregated matrix is produced panel-by-panel inside the packed
    /// GEMM ([`crate::fused`]) and never written to memory. The fused
    /// path has its own blocking (`MC×KC` vertex×feature tiles), so the
    /// configured [`PropMode`] does not apply to it.
    pub fn forward_gemm_into(
        &self,
        g: &CsrGraph,
        h: &DMatrix,
        w: MatRef<'_>,
        beta: f32,
        c: MatMut<'_>,
    ) {
        gemm::gemm_source_nn_v(1.0, &AggregatedRows::mean(g, h.view()), w, beta, c);
    }

    /// [`Self::forward_gemm_into`] over **bf16-stored** activations:
    /// `C = β·C + (Â·H)·W` where `H` is quantised storage, aggregation
    /// accumulates f32, and panels carry bf16 (see
    /// [`crate::fused::AggregatedRowsBf16`]). Forward/serving only — the
    /// backward pass always runs the f32 master path.
    pub fn forward_gemm_bf16_into(
        &self,
        g: &CsrGraph,
        h: gsgcn_tensor::Bf16MatRef<'_>,
        w: MatRef<'_>,
        beta: f32,
        c: MatMut<'_>,
    ) {
        gemm::gemm_source_nn_bf16_v(1.0, &AggregatedRowsBf16::mean(g, h), w, beta, c);
    }

    /// Fused backward: `d_in += (Âᵀ·dY)·Wᵀ`, with the intermediate
    /// `Z = Âᵀ·dY` spilled into `z` (reshaped to `n × dY.cols()`) as a
    /// side effect of panel packing — the caller's weight-gradient GEMM
    /// (`Hᵀ·Z`) reads it without a second aggregation pass. `dy` may be a
    /// column view (the neighbor half of a concatenated gradient).
    pub fn backward_gemm_into(
        &self,
        g: &CsrGraph,
        dy: MatRef<'_>,
        w: MatRef<'_>,
        z: &mut DMatrix,
        d_in: MatMut<'_>,
    ) {
        assert_eq!(
            dy.rows(),
            g.num_vertices(),
            "gradient rows must match vertex count"
        );
        // Âᵀ = A·D⁻¹ on symmetric graphs: the producer folds the 1/deg
        // source scaling into its gather, so no pre-scaled copy of dY is
        // ever materialised (the terms are bit-identical to one).
        let src = AggregatedRows::adjoint_mean(g, dy).with_spill(z);
        gemm::gemm_source_nt_v(1.0, &src, w, 1.0, d_in);
    }
}

/// `Y[v] *= 1/deg(v)` (rows of isolated vertices are left untouched —
/// their aggregate is zero anyway).
pub fn scale_rows_by_inv_degree(g: &CsrGraph, y: &mut DMatrix) {
    let f = y.cols().max(1);
    y.data_mut()
        .par_chunks_mut(f)
        .enumerate()
        .for_each(|(v, row)| {
            let d = g.degree(v as u32);
            if d > 0 {
                let inv = 1.0 / d as f32;
                for x in row {
                    *x *= inv;
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::GraphBuilder;

    fn triangle_plus_leaf() -> CsrGraph {
        GraphBuilder::new(4)
            .add_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
    }

    #[test]
    fn forward_is_neighbor_mean() {
        let g = triangle_plus_leaf();
        let h = DMatrix::from_fn(4, 2, |i, _| i as f32 * 10.0);
        let prop = FeaturePropagator::new(PropMode::Naive);
        let y = prop.forward(&g, &h);
        // Vertex 0: neighbors {1, 2} → mean 15.
        assert!((y.get(0, 0) - 15.0).abs() < 1e-5);
        // Vertex 2: neighbors {0, 1, 3} → mean (0+10+30)/3.
        assert!((y.get(2, 0) - 40.0 / 3.0).abs() < 1e-4);
        // Leaf 3: single neighbor 2 → 20.
        assert!((y.get(3, 1) - 20.0).abs() < 1e-5);
    }

    #[test]
    fn all_modes_agree() {
        let g = triangle_plus_leaf();
        let h = DMatrix::from_fn(4, 6, |i, j| (i + j) as f32 * 0.5);
        let modes = [
            PropMode::Naive,
            PropMode::FeaturePartitioned { cache_bytes: 64 },
            PropMode::TwoD { p: 2, q: 3 },
            PropMode::Auto {
                llc_bytes: 1, // force the Alg. 6 path
                cache_bytes: 64,
            },
            PropMode::Auto {
                llc_bytes: 1 << 30, // force the row-parallel path
                cache_bytes: 64,
            },
        ];
        let ys: Vec<DMatrix> = modes
            .iter()
            .map(|m| FeaturePropagator::new(m.clone()).forward(&g, &h))
            .collect();
        assert!(ys[0].max_abs_diff(&ys[1]) < 1e-6);
        assert!(ys[0].max_abs_diff(&ys[2]) < 1e-6);
    }

    #[test]
    fn backward_is_adjoint_of_forward() {
        // ⟨Â·h, g⟩ must equal ⟨h, Âᵀ·g⟩ for arbitrary h, g — the defining
        // property of a correct backward pass.
        let g = triangle_plus_leaf();
        let prop = FeaturePropagator::default();
        let h = DMatrix::from_fn(4, 3, |i, j| ((i * 3 + j) % 5) as f32 - 2.0);
        let gmat = DMatrix::from_fn(4, 3, |i, j| ((i + 2 * j) % 7) as f32 * 0.5 - 1.0);
        let fwd = prop.forward(&g, &h);
        let bwd = prop.backward(&g, &gmat);
        let lhs: f32 = fwd.data().iter().zip(gmat.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = h.data().iter().zip(bwd.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn isolated_vertex_zero_output() {
        let g = GraphBuilder::new(3).add_edge(0, 1).build();
        let h = DMatrix::filled(3, 2, 7.0);
        let prop = FeaturePropagator::default();
        let y = prop.forward(&g, &h);
        assert_eq!(y.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn fused_forward_gemm_matches_composition() {
        let g = triangle_plus_leaf();
        let h = DMatrix::from_fn(4, 6, |i, j| (i * 6 + j) as f32 * 0.1 - 1.0);
        let w = DMatrix::from_fn(6, 3, |i, j| ((i + 2 * j) % 5) as f32 * 0.2 - 0.3);
        let prop = FeaturePropagator::default();
        let mut c = DMatrix::filled(4, 3, f32::NAN);
        prop.forward_gemm_into(&g, &h, w.view(), 0.0, c.view_mut());
        let r = gemm::matmul(&prop.forward(&g, &h), &w);
        assert!(c.max_abs_diff(&r) < 1e-5);
    }

    #[test]
    fn fused_backward_gemm_matches_composition() {
        let g = triangle_plus_leaf();
        let dy = DMatrix::from_fn(4, 3, |i, j| ((i * 3 + j) % 7) as f32 * 0.3 - 0.8);
        let w = DMatrix::from_fn(5, 3, |i, j| ((i + j) % 4) as f32 * 0.25 - 0.4);
        let prop = FeaturePropagator::default();
        let mut z = DMatrix::zeros(0, 0);
        let mut d_in = DMatrix::filled(4, 5, 0.125);
        prop.backward_gemm_into(&g, dy.view(), w.view(), &mut z, d_in.view_mut());
        // Reference: Z = Âᵀ·dY materialised, then d_in += Z·Wᵀ.
        let zr = prop.backward(&g, &dy);
        assert!(z.max_abs_diff(&zr) < 1e-5, "spilled Z mismatch");
        let mut r = DMatrix::filled(4, 5, 0.125);
        gemm::gemm_nt(1.0, &zr, &w, 1.0, &mut r);
        assert!(d_in.max_abs_diff(&r) < 1e-5);
    }

    #[test]
    fn default_mode_is_adaptive() {
        let p = FeaturePropagator::default();
        assert!(matches!(
            p.mode(),
            PropMode::Auto {
                llc_bytes: 16777216,
                cache_bytes: 262144
            }
        ));
    }
}
