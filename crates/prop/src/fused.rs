//! Fused aggregation→GEMM: the sparse neighbor sum as a GEMM pack source.
//!
//! [`AggregatedRows`] implements [`gemm::PackSource`]: when the packed
//! GEMM driver asks for an `MC×KC` A-panel, the producer *computes* the
//! aggregated rows `Σ_{u∈N(v)} H[u]` (optionally mean-normalised) for
//! that block of vertices and column range, directly into the
//! thread-local pack scratch. The aggregated matrix `Â·H` therefore never
//! exists in DRAM — it lives only as an L2-resident panel between its
//! production and its consumption by the microkernel. See the crate docs
//! for the traffic model.
//!
//! An optional *spill* target captures the aggregated rows as a side
//! effect of packing: the GCN backward pass needs `Z = Âᵀ·dY` twice
//! (input gradient `Z·Wᵀ` and weight gradient `Hᵀ·Z`), so the fused
//! `Z·Wᵀ` GEMM writes `Z` once on the way through instead of running a
//! second aggregation pass.

use gsgcn_graph::CsrGraph;
use gsgcn_tensor::gemm::{PackSource, PackSourceBf16, MR};
use gsgcn_tensor::{scratch, Bf16, Bf16MatRef, DMatrix, MatRef};

/// Raw spill target; tasks write disjoint row ranges (see SAFETY notes).
struct Spill {
    ptr: *mut f32,
    cols: usize,
}

// SAFETY: the GEMM driver hands disjoint `[ic, ic+mc)` row blocks to its
// parallel tasks within one column strip, and strips run sequentially, so
// no two concurrent `pack_a` calls touch overlapping spill rows. Repeat
// packs of the same block (one per strip) rewrite identical values.
unsafe impl Send for Spill {}
unsafe impl Sync for Spill {}

/// A [`PackSource`] whose logical A operand is the aggregated feature
/// matrix: row `v` is `dst_scale(v) · Σ_{u∈N(v)} src_scale(u) · H[u]`.
/// `H` is a (possibly strided) view, so e.g. the neighbor half of a
/// concatenated gradient feeds the producer without a copy.
pub struct AggregatedRows<'a> {
    g: &'a CsrGraph,
    h: MatRef<'a>,
    /// Mean-normalise each *output* row by `1/deg(v)` (the `D⁻¹` of
    /// `Â = D⁻¹A` acting on the destination).
    mean: bool,
    /// Scale each *gathered* row by `1/deg(u)` — `A·D⁻¹·H`, which is
    /// `Âᵀ·H` on the symmetric graphs this workspace builds.
    src_inv_deg: bool,
    spill: Option<Spill>,
}

impl<'a> AggregatedRows<'a> {
    /// Mean-aggregated rows: `A = Â·H` with `Â = D⁻¹A` (forward pass).
    pub fn mean(g: &'a CsrGraph, h: MatRef<'a>) -> Self {
        assert_eq!(
            h.rows(),
            g.num_vertices(),
            "feature rows must match vertex count"
        );
        AggregatedRows {
            g,
            h,
            mean: true,
            src_inv_deg: false,
            spill: None,
        }
    }

    /// Unnormalised neighbor sums: `A = A_adj·H`.
    pub fn sum(g: &'a CsrGraph, h: MatRef<'a>) -> Self {
        assert_eq!(
            h.rows(),
            g.num_vertices(),
            "feature rows must match vertex count"
        );
        AggregatedRows {
            g,
            h,
            mean: false,
            src_inv_deg: false,
            spill: None,
        }
    }

    /// The propagation adjoint: `A = Âᵀ·H = A_adj·D⁻¹·H` (backward pass).
    /// The `1/deg(u)` scaling is folded into the gather itself — each
    /// term is `fl(H[u][c] · 1/deg(u))` exactly as the unfused path's
    /// pre-scaled copy produces, so results match it bit-for-bit while
    /// the scaled matrix never materialises.
    pub fn adjoint_mean(g: &'a CsrGraph, h: MatRef<'a>) -> Self {
        assert_eq!(
            h.rows(),
            g.num_vertices(),
            "feature rows must match vertex count"
        );
        AggregatedRows {
            g,
            h,
            mean: false,
            src_inv_deg: true,
            spill: None,
        }
    }

    /// Also write every aggregated row into `out` (shaped `n × h.cols()`)
    /// as panels are packed. `out` is borrowed for the producer's lifetime,
    /// so it becomes readable once the producer is dropped — after the
    /// GEMM call, every row has been written at least once.
    pub fn with_spill(mut self, out: &'a mut DMatrix) -> Self {
        out.ensure_shape(self.g.num_vertices(), self.h.cols());
        self.spill = Some(Spill {
            ptr: out.data_mut().as_mut_ptr(),
            cols: out.cols(),
        });
        self
    }
}

impl PackSource for AggregatedRows<'_> {
    fn shape(&self) -> (usize, usize) {
        (self.g.num_vertices(), self.h.cols())
    }

    fn pack_a(&self, alpha: f32, ic: usize, mc: usize, pc: usize, kc: usize, out: &mut [f32]) {
        let panels = mc.div_ceil(MR);
        debug_assert_eq!(out.len(), panels * kc * MR);
        // One contiguous accumulator row, scattered into the interleaved
        // panel once per row: the per-neighbor inner loop is then a
        // unit-stride add over `kc` floats the vectoriser handles.
        scratch::with_buf(kc, |acc| {
            for (p, panel) in out.chunks_exact_mut(kc * MR).enumerate() {
                let r0 = p * MR;
                let rows_here = MR.min(mc - r0);
                for r in 0..rows_here {
                    let v = ic + r0 + r;
                    acc.fill(0.0);
                    if self.src_inv_deg {
                        for &u in self.g.neighbors(v as u32) {
                            // `u` has `v` as a neighbor, so deg(u) ≥ 1.
                            let su = 1.0 / self.g.degree(u) as f32;
                            let src = &self.h.row(u as usize)[pc..pc + kc];
                            for (a, &s) in acc.iter_mut().zip(src) {
                                *a += s * su;
                            }
                        }
                    } else {
                        for &u in self.g.neighbors(v as u32) {
                            let src = &self.h.row(u as usize)[pc..pc + kc];
                            for (a, &s) in acc.iter_mut().zip(src) {
                                *a += s;
                            }
                        }
                    }
                    // Same operation order as the unfused path (sum, then
                    // one multiply by 1/deg, then the pack's α fold), so
                    // fused results match the materialised composition
                    // bit-for-bit at α = 1.
                    let deg = self.g.degree(v as u32);
                    let inv = if self.mean && deg > 0 {
                        1.0 / deg as f32
                    } else {
                        1.0
                    };
                    if let Some(spill) = &self.spill {
                        // SAFETY: row `v` is exclusively owned by this
                        // task's block within the current strip (see the
                        // `Spill` safety note); `pc + kc ≤ cols` by the
                        // pack contract.
                        let dst: &mut [f32] = unsafe {
                            std::slice::from_raw_parts_mut(spill.ptr.add(v * spill.cols + pc), kc)
                        };
                        for (d, &a) in dst.iter_mut().zip(acc.iter()) {
                            *d = a * inv;
                        }
                    }
                    let scale = alpha * inv;
                    for (kk, &a) in acc.iter().enumerate() {
                        panel[kk * MR + r] = a * scale;
                    }
                }
                if rows_here < MR {
                    for kk in 0..kc {
                        panel[kk * MR + rows_here..(kk + 1) * MR].fill(0.0);
                    }
                }
            }
        });
    }
}

/// The bf16-storage twin of [`AggregatedRows`] for the forward pass:
/// `H` is stored bf16 (quantised activations or shard feature rows); the
/// neighbor sum still accumulates in a **f32** scratch row (each gathered
/// element widens exactly, so the aggregation itself adds no rounding
/// beyond f32), and the result is rounded **once** on the scatter into
/// the bf16 panel — α and the mean's `1/deg` are folded in before that
/// single quantisation, per the [`PackSourceBf16`] contract.
///
/// Forward-only: no spill, no adjoint — the backward pass stays on the
/// f32 master path.
pub struct AggregatedRowsBf16<'a> {
    g: &'a CsrGraph,
    h: Bf16MatRef<'a>,
    mean: bool,
}

impl<'a> AggregatedRowsBf16<'a> {
    /// Mean-aggregated rows over bf16 storage: `A = Â·H`.
    pub fn mean(g: &'a CsrGraph, h: Bf16MatRef<'a>) -> Self {
        assert_eq!(
            h.rows(),
            g.num_vertices(),
            "feature rows must match vertex count"
        );
        AggregatedRowsBf16 { g, h, mean: true }
    }

    /// Unnormalised neighbor sums over bf16 storage: `A = A_adj·H`.
    pub fn sum(g: &'a CsrGraph, h: Bf16MatRef<'a>) -> Self {
        assert_eq!(
            h.rows(),
            g.num_vertices(),
            "feature rows must match vertex count"
        );
        AggregatedRowsBf16 { g, h, mean: false }
    }
}

impl PackSourceBf16 for AggregatedRowsBf16<'_> {
    fn shape(&self) -> (usize, usize) {
        (self.g.num_vertices(), self.h.cols())
    }

    fn pack_a_bf16(
        &self,
        alpha: f32,
        ic: usize,
        mc: usize,
        pc: usize,
        kc: usize,
        out: &mut [Bf16],
    ) {
        let panels = mc.div_ceil(MR);
        debug_assert_eq!(out.len(), panels * kc * MR);
        scratch::with_buf(kc, |acc| {
            for (p, panel) in out.chunks_exact_mut(kc * MR).enumerate() {
                let r0 = p * MR;
                let rows_here = MR.min(mc - r0);
                for r in 0..rows_here {
                    let v = ic + r0 + r;
                    acc.fill(0.0);
                    for &u in self.g.neighbors(v as u32) {
                        let src = &self.h.row(u as usize)[pc..pc + kc];
                        for (a, &s) in acc.iter_mut().zip(src) {
                            *a += s.to_f32();
                        }
                    }
                    let deg = self.g.degree(v as u32);
                    let inv = if self.mean && deg > 0 {
                        1.0 / deg as f32
                    } else {
                        1.0
                    };
                    let scale = alpha * inv;
                    for (kk, &a) in acc.iter().enumerate() {
                        panel[kk * MR + r] = Bf16::from_f32(a * scale);
                    }
                }
                if rows_here < MR {
                    for kk in 0..kc {
                        panel[kk * MR + rows_here..(kk + 1) * MR].fill(Bf16::ZERO);
                    }
                }
            }
        });
    }

    fn pack_a_bf16_rowmajor(
        &self,
        alpha: f32,
        ic: usize,
        mc: usize,
        pc: usize,
        kc: usize,
        kc_pad: usize,
        out: &mut [Bf16],
    ) {
        // The accumulator row is already contiguous — quantise it straight
        // into the row-major block the AMX tile driver strides over,
        // skipping the MR scatter + de-interleave of the default path.
        // Same operation order as `pack_a_bf16` (f32 sum, one 1/deg·α
        // fold, single rounding), so the two layouts hold identical bits.
        scratch::with_buf(kc, |acc| {
            for (r, dst) in out.chunks_exact_mut(kc_pad).enumerate() {
                if r >= mc {
                    dst.fill(Bf16::ZERO);
                    continue;
                }
                let v = ic + r;
                acc.fill(0.0);
                for &u in self.g.neighbors(v as u32) {
                    let src = &self.h.row(u as usize)[pc..pc + kc];
                    for (a, &s) in acc.iter_mut().zip(src) {
                        *a += s.to_f32();
                    }
                }
                let deg = self.g.degree(v as u32);
                let inv = if self.mean && deg > 0 {
                    1.0 / deg as f32
                } else {
                    1.0
                };
                let scale = alpha * inv;
                for (d, &a) in dst[..kc].iter_mut().zip(acc.iter()) {
                    *d = Bf16::from_f32(a * scale);
                }
                dst[kc..].fill(Bf16::ZERO);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::propagator::scale_rows_by_inv_degree;
    use gsgcn_graph::GraphBuilder;
    use gsgcn_tensor::gemm;

    fn rand_graph(n: usize, extra: usize, seed: u64) -> CsrGraph {
        let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let mut s = seed;
        for _ in 0..extra {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 33) as usize) % n;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((s >> 33) as usize) % n;
            if a != b {
                edges.push((a as u32, b as u32));
            }
        }
        GraphBuilder::new(n).add_edges(edges).build()
    }

    fn features(n: usize, f: usize) -> DMatrix {
        DMatrix::from_fn(n, f, |i, j| ((i * 31 + j * 7) % 13) as f32 * 0.25 - 1.0)
    }

    #[test]
    fn fused_nn_matches_aggregate_then_matmul() {
        // Shapes straddling MR/MC/KC boundaries.
        for &(n, f, h) in &[(5usize, 3usize, 2usize), (33, 9, 7), (70, 40, 17)] {
            let g = rand_graph(n, 2 * n, n as u64);
            let hm = features(n, f);
            let w = features(f, h);
            let mut c = DMatrix::filled(n, h, f32::NAN);
            gemm::gemm_source_nn_v(
                1.0,
                &AggregatedRows::mean(&g, hm.view()),
                w.view(),
                0.0,
                c.view_mut(),
            );
            let mut agg = kernels::aggregate_reference(&g, &hm);
            scale_rows_by_inv_degree(&g, &mut agg);
            let r = gemm::matmul(&agg, &w);
            assert!(c.max_abs_diff(&r) < 1e-4, "n={n} f={f} h={h}");
        }
    }

    #[test]
    fn fused_nt_spills_aggregated_rows() {
        let (n, f, h) = (40usize, 12usize, 6usize);
        let g = rand_graph(n, 60, 3);
        let dy = features(n, h);
        let w = features(f, h); // stored f×h, consumed as Wᵀ
        let mut z = DMatrix::zeros(0, 0);
        let mut c = DMatrix::filled(n, f, 0.25);
        {
            let src = AggregatedRows::sum(&g, dy.view()).with_spill(&mut z);
            gemm::gemm_source_nt_v(1.0, &src, w.view(), 1.0, c.view_mut());
        }
        let agg = kernels::aggregate_reference(&g, &dy);
        assert!(z.max_abs_diff(&agg) < 1e-5, "spill must equal aggregate");
        let mut r = DMatrix::filled(n, f, 0.25);
        gemm::gemm_nt(1.0, &agg, &w, 1.0, &mut r);
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn fused_bf16_nn_within_tolerance_of_f32() {
        use gsgcn_tensor::precision::{rel_tolerance, Precision};
        for &(n, f, h) in &[(33usize, 9usize, 7usize), (70, 40, 17)] {
            let g = rand_graph(n, 2 * n, n as u64);
            let hm = features(n, f);
            let w = features(f, h);
            let q: Vec<Bf16> = hm.data().iter().map(|&x| Bf16::from_f32(x)).collect();
            let mut c = DMatrix::filled(n, h, f32::NAN);
            gemm::gemm_source_nn_bf16_v(
                1.0,
                &AggregatedRowsBf16::mean(&g, Bf16MatRef::new(&q, n, f)),
                w.view(),
                0.0,
                c.view_mut(),
            );
            // f32 reference on the unquantised operands: the bf16 result
            // must stay inside the depth-1 tolerance band.
            let mut agg = kernels::aggregate_reference(&g, &hm);
            scale_rows_by_inv_degree(&g, &mut agg);
            let r = gemm::matmul(&agg, &w);
            let tol = rel_tolerance(Precision::Bf16, 1, f);
            let scale = r.data().iter().fold(0f32, |s, &x| s.max(x.abs()));
            for (cv, rv) in c.data().iter().zip(r.data()) {
                assert!(
                    (cv - rv).abs() <= tol * scale,
                    "n={n} f={f} h={h}: bf16 {cv} vs f32 {rv}"
                );
            }
        }
    }

    #[test]
    fn isolated_vertices_produce_zero_rows() {
        let g = GraphBuilder::new(3).add_edge(0, 1).build();
        let hm = DMatrix::filled(3, 4, 5.0);
        let w = DMatrix::eye(4);
        let mut c = DMatrix::filled(3, 4, f32::NAN);
        gemm::gemm_source_nn_v(
            1.0,
            &AggregatedRows::mean(&g, hm.view()),
            w.view(),
            0.0,
            c.view_mut(),
        );
        assert_eq!(c.row(2), &[0.0; 4]);
        assert_eq!(c.row(0), &[5.0; 4]);
    }
}
