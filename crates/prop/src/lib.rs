//! Sparse feature propagation within the sampled subgraph (Sec. V).
//!
//! The hot kernel of GCN training is `(A_GS^{(ℓ)})ᵀ · H` — every vertex
//! pulls and averages its neighbors' feature vectors. This crate provides:
//!
//! * [`kernels`] — three interchangeable implementations:
//!   - `aggregate_naive`: row-parallel over the full feature width (the
//!     conventional scheme; working set `≈ bytes·n·f` can exceed cache);
//!   - `aggregate_feature_partitioned`: **Algorithm 6** — partition the
//!     feature dimension into `Q = max{C, bytes·n·f / S_cache}` column
//!     blocks so the active block of `H` stays cache-resident while the
//!     CSR structure streams; no graph partitioning (`P = 1`);
//!   - `aggregate_2d`: `P × Q` graph-and-feature partitioning, the
//!     alternative Theorem 2 proves is at best 2× better — kept for the
//!     partitioning ablation.
//! * [`propagator`] — the mean-aggregation forward/backward operator used
//!   by the GCN layers (normalisation folded around the raw aggregate).
//! * [`fused`] — the aggregation as a GEMM *pack source*, fusing `Â·H`
//!   with the weight GEMM (see below).
//! * [`cost_model`] — the communication model `g_comm(P, Q)` of Eq. (3)/(4)
//!   and a brute-force verifier for Theorem 2's 2-approximation claim.
//!
//! # Fused aggregate→GEMM dataflow
//!
//! A GCN layer computes `(Â·H)·W`. Run unfused, the aggregated matrix
//! `Â·H` (`n×f` f32) is written to DRAM by the aggregation kernel and
//! immediately re-read as the GEMM's A operand — on bandwidth-bound
//! shapes that write+read round trip is the single largest term in the
//! layer's memory traffic:
//!
//! ```text
//! unfused:  read H (gather, E·f) + write Â·H (n·f) + read Â·H (n·f) + write C
//! fused:    read H (gather, E·f)                                    + write C
//! ```
//!
//! The fused path ([`fused::AggregatedRows`] + `gemm::gemm_source_nn_v`)
//! deletes the middle terms: the packed-GEMM driver asks the *producer*
//! for each `MC×KC` A-panel, and the producer computes the aggregated
//! rows `Σ_{u∈N(v)} H[u][pc..pc+KC]` for that vertex block straight into
//! the thread-local pack scratch. The aggregated values live only as a
//! ~64 KiB panel in L2 between production and consumption by the
//! microkernel; each element is produced exactly once per `NC`-column
//! strip of the output (one strip for GCN widths ≤ 1024). The backward
//! pass reuses the same producer for `(Âᵀ·dY)·Wᵀ`, *spilling* the narrow
//! `Z = Âᵀ·dY` (`n×half`) as a pack side effect so the weight-gradient
//! GEMM `Hᵀ·Z` can consume it without a second aggregation pass — the
//! wide `n×f_in` aggregate cache of the unfused layer disappears
//! entirely. [`propagator::FeaturePropagator::forward_gemm_into`] /
//! [`propagator::FeaturePropagator::backward_gemm_into`] wrap both.
//!
//! # Example
//!
//! ```
//! use gsgcn_graph::GraphBuilder;
//! use gsgcn_tensor::DMatrix;
//! use gsgcn_prop::propagator::{FeaturePropagator, PropMode};
//!
//! let g = GraphBuilder::new(3).add_edge(0, 1).add_edge(1, 2).build();
//! let h = DMatrix::from_fn(3, 4, |i, _| i as f32);
//! let prop = FeaturePropagator::new(PropMode::FeaturePartitioned {
//!     cache_bytes: 256 * 1024,
//! });
//! let y = prop.forward(&g, &h);
//! // Vertex 1 averages vertices 0 and 2 → 1.0.
//! assert!((y.get(1, 0) - 1.0).abs() < 1e-6);
//! ```

pub mod cost_model;
pub mod fused;
pub mod kernels;
pub mod propagator;
