//! Sparse feature propagation within the sampled subgraph (Sec. V).
//!
//! The hot kernel of GCN training is `(A_GS^{(ℓ)})ᵀ · H` — every vertex
//! pulls and averages its neighbors' feature vectors. This crate provides:
//!
//! * [`kernels`] — three interchangeable implementations:
//!   - `aggregate_naive`: row-parallel over the full feature width (the
//!     conventional scheme; working set `≈ bytes·n·f` can exceed cache);
//!   - `aggregate_feature_partitioned`: **Algorithm 6** — partition the
//!     feature dimension into `Q = max{C, bytes·n·f / S_cache}` column
//!     blocks so the active block of `H` stays cache-resident while the
//!     CSR structure streams; no graph partitioning (`P = 1`);
//!   - `aggregate_2d`: `P × Q` graph-and-feature partitioning, the
//!     alternative Theorem 2 proves is at best 2× better — kept for the
//!     partitioning ablation.
//! * [`propagator`] — the mean-aggregation forward/backward operator used
//!   by the GCN layers (normalisation folded around the raw aggregate).
//! * [`cost_model`] — the communication model `g_comm(P, Q)` of Eq. (3)/(4)
//!   and a brute-force verifier for Theorem 2's 2-approximation claim.
//!
//! # Example
//!
//! ```
//! use gsgcn_graph::GraphBuilder;
//! use gsgcn_tensor::DMatrix;
//! use gsgcn_prop::propagator::{FeaturePropagator, PropMode};
//!
//! let g = GraphBuilder::new(3).add_edge(0, 1).add_edge(1, 2).build();
//! let h = DMatrix::from_fn(3, 4, |i, _| i as f32);
//! let prop = FeaturePropagator::new(PropMode::FeaturePartitioned {
//!     cache_bytes: 256 * 1024,
//! });
//! let y = prop.forward(&g, &h);
//! // Vertex 1 averages vertices 0 and 2 → 1.0.
//! assert!((y.get(1, 0) - 1.0).abs() < 1e-6);
//! ```

pub mod cost_model;
pub mod kernels;
pub mod propagator;
