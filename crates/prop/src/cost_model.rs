//! Communication cost model of feature propagation — Eq. (3)/(4) and
//! Theorem 2.
//!
//! For `P` graph partitions and `Q` feature partitions, the paper models
//! the DRAM traffic of one full propagation as
//!
//! ```text
//! g_comm(P, Q) = 2·Q·n·d  +  8·P·n·f·γ_P        (bytes)
//! ```
//!
//! (first term: streaming the CSR structure once per feature block —
//! 2 bytes per INT16 index; second term: loading the replicated feature
//! blocks — 8 bytes per DOUBLE value; `γ_P` = replication factor of the
//! partitioning). Subject to `P·Q ≥ C` (enough parallelism) and
//! `8·n·f·γ_P / Q ≤ S_cache` (blocks fit in fast memory).
//!
//! Theorem 2: `P = 1, Q = max{C, 8nf/S_cache}` is within 2× of the
//! optimum whenever `C ≤ 4f/d` and `2nd ≤ S_cache` — verified here by
//! brute force over the (P, Q) grid for the best case `γ_P = 1/P`.

/// Problem parameters for the communication model.
#[derive(Clone, Copy, Debug)]
pub struct PropCostModel {
    /// Subgraph vertices `n`.
    pub n: usize,
    /// Average subgraph degree `d`.
    pub d: f64,
    /// Feature length `f`.
    pub f: usize,
    /// Processor count `C`.
    pub c: usize,
    /// Fast-memory (cache) bytes `S_cache`.
    pub s_cache: usize,
    /// Bytes per adjacency index (paper: 2, INT16).
    pub bytes_idx: f64,
    /// Bytes per feature value (paper: 8, DOUBLE).
    pub bytes_val: f64,
}

impl PropCostModel {
    /// Model with the paper's constants (INT16 indices, DOUBLE features).
    pub fn paper(n: usize, d: f64, f: usize, c: usize, s_cache: usize) -> Self {
        PropCostModel {
            n,
            d,
            f,
            c,
            s_cache,
            bytes_idx: 2.0,
            bytes_val: 8.0,
        }
    }

    /// `g_comm(P, Q)` for a given replication factor `γ_P`.
    pub fn comm(&self, p: usize, q: usize, gamma_p: f64) -> f64 {
        self.bytes_idx * q as f64 * self.n as f64 * self.d
            + self.bytes_val * p as f64 * self.n as f64 * self.f as f64 * gamma_p
    }

    /// `g_comp` — total computation (independent of partitioning, Eq. 3).
    pub fn comp(&self) -> f64 {
        self.n as f64 * self.d * self.f as f64
    }

    /// Whether `(P, Q, γ_P)` satisfies both constraints of Eq. (4).
    pub fn feasible(&self, p: usize, q: usize, gamma_p: f64) -> bool {
        p * q >= self.c
            && self.bytes_val * self.n as f64 * self.f as f64 * gamma_p / q as f64
                <= self.s_cache as f64
    }

    /// The paper's chosen configuration: `P = 1`,
    /// `Q = max{C, 8nf/S_cache}` (Theorem 2 / Alg. 6 line 2).
    pub fn feature_only_q(&self) -> usize {
        let by_cache =
            (self.bytes_val * self.n as f64 * self.f as f64 / self.s_cache as f64).ceil() as usize;
        self.c.max(by_cache).max(1)
    }

    /// Communication of the feature-only configuration (`γ_1 = 1`).
    pub fn feature_only_comm(&self) -> f64 {
        self.comm(1, self.feature_only_q(), 1.0)
    }

    /// Brute-force lower bound on `g_comm` over a `(P, Q)` grid, granting
    /// the opponent the best possible replication factor `γ_P = 1/P`
    /// (no partitioner can do better). This is the "optimal strategy"
    /// Theorem 2 compares against.
    pub fn bruteforce_optimum(&self, p_max: usize, q_max: usize) -> f64 {
        let mut best = f64::INFINITY;
        for p in 1..=p_max {
            let gamma = 1.0 / p as f64;
            for q in 1..=q_max {
                if self.feasible(p, q, gamma) {
                    best = best.min(self.comm(p, q, gamma));
                }
            }
        }
        best
    }

    /// Theorem 2's precondition: `C ≤ 4f/d` and `2nd ≤ S_cache`.
    pub fn theorem2_applicable(&self) -> bool {
        (self.c as f64) <= 4.0 * self.f as f64 / self.d
            && 2.0 * self.n as f64 * self.d <= self.s_cache as f64
    }

    /// The approximation ratio achieved by feature-only partitioning
    /// against the brute-force optimum.
    pub fn approximation_ratio(&self, p_max: usize, q_max: usize) -> f64 {
        self.feature_only_comm() / self.bruteforce_optimum(p_max, q_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical() -> PropCostModel {
        // Paper's "typical values": n ≤ 8000, f = 512, d = 15, S = 256 KiB.
        PropCostModel::paper(8000, 15.0, 512, 40, 256 * 1024)
    }

    #[test]
    fn paper_typical_values_meet_preconditions() {
        let m = typical();
        // C ≤ 4f/d = 136 cores (the paper's number).
        assert!((4.0 * m.f as f64 / m.d - 136.5).abs() < 0.5);
        assert!(m.theorem2_applicable());
        // 2nd = 240K ≤ 256K cache.
        assert!(2.0 * m.n as f64 * m.d <= m.s_cache as f64);
    }

    #[test]
    fn lower_bound_8nf() {
        // g_comm ≥ 8nf for all feasible (P, Q) with γ ≥ 1/P.
        let m = typical();
        let lb = m.bytes_val * m.n as f64 * m.f as f64;
        assert!(m.bruteforce_optimum(64, 4096) >= lb - 1e-6);
    }

    #[test]
    fn theorem2_ratio_at_most_two() {
        for (n, d, f, c) in [
            (8000, 15.0, 512, 40),
            (1000, 10.0, 512, 16),
            (4000, 20.0, 1024, 24),
            (2000, 5.0, 256, 8),
        ] {
            let m = PropCostModel::paper(n, d, f, c, 256 * 1024);
            if !m.theorem2_applicable() {
                continue;
            }
            let ratio = m.approximation_ratio(64, 8192);
            assert!(
                ratio <= 2.0 + 1e-9,
                "ratio {ratio:.3} > 2 for n={n} d={d} f={f} c={c}"
            );
            assert!(ratio >= 1.0 - 1e-9, "optimum can't be beaten: {ratio}");
        }
    }

    #[test]
    fn feature_only_q_cases() {
        // Case 1 of the proof: C ≥ 8nf/S → Q = C.
        let m = PropCostModel::paper(100, 10.0, 64, 40, 1 << 20);
        assert_eq!(m.feature_only_q(), 40);
        // Case 2: cache-bound → Q = ⌈8nf/S⌉.
        let m = PropCostModel::paper(8000, 15.0, 512, 4, 256 * 1024);
        assert_eq!(m.feature_only_q(), 125);
    }

    #[test]
    fn feature_only_feasible() {
        let m = typical();
        let q = m.feature_only_q();
        assert!(
            m.feasible(1, q, 1.0),
            "paper's configuration must be feasible"
        );
    }

    #[test]
    fn comp_independent_of_partitioning() {
        let m = typical();
        // Nothing to vary — just pin the value so refactors preserve it.
        assert!((m.comp() - 8000.0 * 15.0 * 512.0).abs() < 1e-3);
    }

    #[test]
    fn comm_monotone_in_q_for_fixed_p() {
        let m = typical();
        // With P fixed, adding feature partitions only adds CSR re-streams.
        let mut prev = 0.0;
        for q in 1..50 {
            let c = m.comm(1, q, 1.0);
            assert!(c > prev);
            prev = c;
        }
    }
}
