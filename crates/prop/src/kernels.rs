//! Aggregation kernels: `Y[v] = Σ_{u ∈ N(v)} H[u]`.
//!
//! All three kernels compute the identical unnormalised neighbor sum; they
//! differ only in how work is partitioned across cores and what the cache
//! working set looks like. Mean normalisation (the `D⁻¹` of `Â = D⁻¹A`) is
//! applied by the caller ([`crate::propagator`]) so the kernels stay
//! byte-for-byte comparable in benches.

use gsgcn_graph::partition::VertexPartition;
use gsgcn_graph::CsrGraph;
use gsgcn_tensor::{scratch, DMatrix};
use rayon::prelude::*;

/// Row-parallel aggregation over the full feature width.
///
/// Each task owns a block of destination rows and gathers from arbitrary
/// source rows — a working set of the whole `n×f` matrix, which spills
/// cache once `bytes·n·f > S_cache` (the regime Alg. 6 fixes).
pub fn aggregate_naive(g: &CsrGraph, h: &DMatrix) -> DMatrix {
    let mut y = DMatrix::zeros(g.num_vertices(), h.cols());
    aggregate_naive_into(g, h, &mut y);
    y
}

/// Accumulating in-place variant of [`aggregate_naive`]:
/// `y[v] += Σ_{u∈N(v)} h[u]` into the caller's buffer (no allocation).
pub fn aggregate_naive_into(g: &CsrGraph, h: &DMatrix, y: &mut DMatrix) {
    let n = g.num_vertices();
    assert_eq!(h.rows(), n, "feature rows must match vertex count");
    let f = h.cols();
    assert_eq!(y.shape(), (n, f), "output shape mismatch");
    if f == 0 || n == 0 {
        return;
    }
    // Batch rows per rayon task so per-task work is ≳ tens of µs;
    // one row costs ~d̄·f flops.
    let avg_deg = (g.num_edges() / n).max(1);
    let rows_per_task = (50_000 / (avg_deg * f).max(1)).clamp(1, n);
    y.data_mut()
        .par_chunks_mut(f * rows_per_task)
        .enumerate()
        .for_each(|(chunk_idx, out_chunk)| {
            let v0 = chunk_idx * rows_per_task;
            for (local, out) in out_chunk.chunks_exact_mut(f).enumerate() {
                for &u in g.neighbors((v0 + local) as u32) {
                    let src = h.row(u as usize);
                    for (o, &s) in out.iter_mut().zip(src) {
                        *o += s;
                    }
                }
            }
        });
}

/// Algorithm 6: feature-dimension-partitioned aggregation.
///
/// The feature dimension is split into `Q = max{C, bytes·n·f / S_cache}`
/// column blocks (`C` = current rayon parallelism). Each task propagates
/// one block over *all* vertices: the source block (`n × f/Q` values)
/// fits in cache while the CSR arrays stream. `P = 1` — no graph
/// partitioning — which also gives perfect load balance and zero
/// preprocessing (Sec. V-B's four claimed properties).
pub fn aggregate_feature_partitioned(g: &CsrGraph, h: &DMatrix, cache_bytes: usize) -> DMatrix {
    let mut y = DMatrix::zeros(g.num_vertices(), h.cols());
    aggregate_feature_partitioned_into(g, h, cache_bytes, &mut y);
    y
}

/// Blocks per pack piece (see [`aggregate_feature_partitioned_into`]):
/// one piece packs up to this many consecutive column blocks in a single
/// traversal of H, bounding the pack-write working set to
/// `PIECE_BLOCKS × cache_bytes`.
const PIECE_BLOCKS: usize = 4;

/// Accumulating in-place variant of [`aggregate_feature_partitioned`].
/// The packed column range comes from the thread-local scratch arena, so
/// a warm training loop performs no allocation here.
///
/// Consecutive column blocks are grouped into *pieces* of up to
/// [`PIECE_BLOCKS`] blocks. When `Q > C` lands several blocks on one
/// thread, a piece packs its blocks in **one** traversal of H — each row
/// segment is read once (contiguous) and fanned out to the per-block
/// regions of a block-major piece buffer — instead of one narrow
/// strided re-walk of H per block. Each block's gather then runs on its
/// own dense `n × w` region, exactly the cache-resident working set
/// Alg. 6 sizes for; the piece bound keeps the pack's write working set
/// small. Piece count still ≥ `Q / PIECE_BLOCKS ≥ C` in the cache-bound
/// regime, so parallelism is preserved, and atomic chunk claiming in the
/// pool balances uneven pieces.
pub fn aggregate_feature_partitioned_into(
    g: &CsrGraph,
    h: &DMatrix,
    cache_bytes: usize,
    y: &mut DMatrix,
) {
    let n = g.num_vertices();
    assert_eq!(h.rows(), n, "feature rows must match vertex count");
    let f = h.cols();
    assert_eq!(y.shape(), (n, f), "output shape mismatch");
    if f == 0 || n == 0 {
        return;
    }
    let threads = rayon::current_num_threads().max(1);
    let q = num_feature_partitions(n, f, cache_bytes, threads);
    // Block boundaries are aligned to whole cache lines (16 f32 = 64 B):
    // two tasks writing the two halves of one line would otherwise
    // false-share every row of Y and serialise on coherence traffic.
    let block = align_block_width(f, q);
    let q = f.div_ceil(block);

    // Group blocks into pieces, keeping at least one piece per thread
    // (flooring `q / threads` so grouping never drops pieces below the
    // thread count when `threads < q < 2·threads`).
    let blocks_per_piece = PIECE_BLOCKS.min(q / threads).max(1);
    let pieces = q.div_ceil(blocks_per_piece);

    // Each piece writes a disjoint column range of every row of Y. Rust
    // can't slice columns of a row-major matrix disjointly, so the write
    // target is passed as a raw pointer; safety: a piece writes only to
    // columns of its own blocks, and piece ranges never overlap.
    struct SendPtr(*mut f32);
    unsafe impl Send for SendPtr {}
    unsafe impl Sync for SendPtr {}
    let y_ptr = SendPtr(y.data_mut().as_mut_ptr());

    (0..pieces).into_par_iter().for_each(|pi| {
        let b0 = pi * blocks_per_piece;
        let b1 = ((pi + 1) * blocks_per_piece).min(q);
        if b0 >= b1 {
            return;
        }
        let c_lo = b0 * block;
        let c_hi = (b1 * block).min(f);
        let w_all = c_hi - c_lo;
        // Pack H[:, c_lo..c_hi] — the union of this piece's blocks — in
        // one traversal of H, block-major: block `b`'s dense `n × w_b`
        // region starts at `n·(c0_b − c_lo)` (regions are consecutive, so
        // the offset is the column prefix). This is the "H^(i,j) fits
        // into the fast memory" step of the paper's model, hoisted out of
        // the per-block loop: all the random gather traffic below hits a
        // dense cache-sized block region instead of scattered 64-byte
        // slices of H. The buffer comes from the thread-local arena and
        // every slot is overwritten by the pack.
        scratch::with_buf(n * w_all, |packed| {
            for v in 0..n {
                let row = &h.row(v)[c_lo..c_hi];
                for b in b0..b1 {
                    let c0 = b * block;
                    let c1 = ((b + 1) * block).min(f);
                    let (off, w) = (c0 - c_lo, c1 - c0);
                    packed[n * off + v * w..n * off + (v + 1) * w]
                        .copy_from_slice(&row[off..off + w]);
                }
            }
            let y_base = &y_ptr;
            for b in b0..b1 {
                let c0 = b * block;
                let c1 = ((b + 1) * block).min(f);
                let (off, w) = (c0 - c_lo, c1 - c0);
                let region = &packed[n * off..n * off + n * w];
                for v in 0..n {
                    // SAFETY: rows are `f` long; [c0, c1) is in-bounds and
                    // owned exclusively by this piece (disjoint ranges).
                    let out: &mut [f32] =
                        unsafe { std::slice::from_raw_parts_mut(y_base.0.add(v * f + c0), w) };
                    for &u in g.neighbors(v as u32) {
                        let src = &region[u as usize * w..(u as usize + 1) * w];
                        for (o, &s) in out.iter_mut().zip(src) {
                            *o += s;
                        }
                    }
                }
            }
        });
    });
}

/// `Q` from Alg. 6 line 2: `max{C, bytes·n·f / S_cache}`, clamped to
/// `[1, f]` so blocks are at least one column wide.
pub fn num_feature_partitions(n: usize, f: usize, cache_bytes: usize, c: usize) -> usize {
    let bytes = std::mem::size_of::<f32>();
    let by_cache = (bytes * n * f).div_ceil(cache_bytes.max(1));
    by_cache.max(c).clamp(1, f.max(1))
}

/// Cache line in f32 elements (64 B / 4 B).
const LINE_F32: usize = 16;

/// Column-block width for `q` requested partitions of `f` columns,
/// rounded up to a whole cache line unless `f` itself is sub-line.
fn align_block_width(f: usize, q: usize) -> usize {
    let raw = f.div_ceil(q.max(1)).max(1);
    if f <= LINE_F32 {
        raw
    } else {
        raw.div_ceil(LINE_F32) * LINE_F32
    }
}

/// 2-D partitioned aggregation: `P` graph partitions × `Q` feature
/// partitions (the scheme Theorem 2 compares against).
///
/// Each of the `P·Q` tasks owns the (rows of partition `i`) × (columns of
/// block `j`) output cells — disjoint, so parallel writes are safe.
pub fn aggregate_2d(g: &CsrGraph, h: &DMatrix, partition: &VertexPartition, q: usize) -> DMatrix {
    let mut y = DMatrix::zeros(g.num_vertices(), h.cols());
    aggregate_2d_into(g, h, partition, q, &mut y);
    y
}

/// Accumulating in-place variant of [`aggregate_2d`].
pub fn aggregate_2d_into(
    g: &CsrGraph,
    h: &DMatrix,
    partition: &VertexPartition,
    q: usize,
    y: &mut DMatrix,
) {
    let n = g.num_vertices();
    assert_eq!(h.rows(), n, "feature rows must match vertex count");
    assert_eq!(partition.part.len(), n, "partition size mismatch");
    assert!(q >= 1);
    let f = h.cols();
    assert_eq!(y.shape(), (n, f), "output shape mismatch");
    if f == 0 || n == 0 {
        return;
    }
    let p = partition.num_parts;
    // Same cache-line alignment as the feature-only kernel; row
    // partitions write disjoint rows so only the column split matters.
    let block = align_block_width(f, q);
    let q = f.div_ceil(block);

    // Pre-resolve partition membership lists once (the preprocessing cost
    // feature-only partitioning avoids).
    let members: Vec<Vec<u32>> = (0..p as u32).map(|i| partition.members(i)).collect();

    struct SendPtr(*mut f32);
    unsafe impl Send for SendPtr {}
    unsafe impl Sync for SendPtr {}
    let y_ptr = SendPtr(y.data_mut().as_mut_ptr());

    (0..p * q).into_par_iter().for_each(|task| {
        let (pi, qi) = (task / q, task % q);
        let c0 = qi * block;
        let c1 = ((qi + 1) * block).min(f);
        if c0 >= c1 {
            return;
        }
        let y_base = &y_ptr;
        for &v in &members[pi] {
            // SAFETY: task (pi, qi) exclusively owns rows of partition pi
            // × columns [c0, c1); partitions are disjoint.
            let out: &mut [f32] = unsafe {
                std::slice::from_raw_parts_mut(y_base.0.add(v as usize * f + c0), c1 - c0)
            };
            for &u in g.neighbors(v) {
                let src = &h.row(u as usize)[c0..c1];
                for (o, &s) in out.iter_mut().zip(src) {
                    *o += s;
                }
            }
        }
    });
}

/// Serial reference implementation (ground truth for tests).
pub fn aggregate_reference(g: &CsrGraph, h: &DMatrix) -> DMatrix {
    let n = g.num_vertices();
    assert_eq!(h.rows(), n);
    let f = h.cols();
    let mut y = DMatrix::zeros(n, f);
    for v in 0..n {
        for &u in g.neighbors(v as u32) {
            for c in 0..f {
                let cur = y.get(v, c);
                y.set(v, c, cur + h.get(u as usize, c));
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::partition::range_partition;
    use gsgcn_graph::GraphBuilder;

    fn rand_graph(n: usize, extra: usize, seed: u64) -> CsrGraph {
        // Ring + pseudo-random chords: connected, deterministic.
        let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let mut s = seed;
        for _ in 0..extra {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 33) as usize) % n;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((s >> 33) as usize) % n;
            if a != b {
                edges.push((a as u32, b as u32));
            }
        }
        GraphBuilder::new(n).add_edges(edges).build()
    }

    fn features(n: usize, f: usize) -> DMatrix {
        DMatrix::from_fn(n, f, |i, j| ((i * 31 + j * 7) % 13) as f32 * 0.25 - 1.0)
    }

    #[test]
    fn naive_matches_reference() {
        let g = rand_graph(40, 60, 1);
        let h = features(40, 9);
        let y = aggregate_naive(&g, &h);
        let r = aggregate_reference(&g, &h);
        assert!(y.max_abs_diff(&r) < 1e-5);
    }

    #[test]
    fn feature_partitioned_matches_reference() {
        let g = rand_graph(50, 80, 2);
        let h = features(50, 17);
        // Tiny cache forces many partitions; huge cache forces Q = C.
        for cache in [64, 1024, 1 << 20] {
            let y = aggregate_feature_partitioned(&g, &h, cache);
            let r = aggregate_reference(&g, &h);
            assert!(y.max_abs_diff(&r) < 1e-5, "cache={cache}");
        }
    }

    #[test]
    fn two_d_matches_reference() {
        let g = rand_graph(30, 40, 3);
        let h = features(30, 8);
        for p in [1, 2, 3] {
            for q in [1, 2, 8] {
                let part = range_partition(30, p);
                let y = aggregate_2d(&g, &h, &part, q);
                let r = aggregate_reference(&g, &h);
                assert!(y.max_abs_diff(&r) < 1e-5, "p={p} q={q}");
            }
        }
    }

    #[test]
    fn q_formula() {
        // Q = max(C, bytes·n·f/S) clamped to [1, f].
        assert_eq!(num_feature_partitions(1000, 512, 256 * 1024, 4), 8); // 4·1000·512/256K = 7.8 → 8
        assert_eq!(num_feature_partitions(10, 512, 1 << 30, 4), 4); // cache huge → Q = C
        assert_eq!(num_feature_partitions(10, 2, 1, 4), 2); // clamped to f
        assert_eq!(num_feature_partitions(0, 0, 1024, 4), 1); // degenerate
    }

    #[test]
    fn empty_feature_width() {
        let g = rand_graph(10, 0, 4);
        let h = DMatrix::zeros(10, 0);
        assert_eq!(aggregate_naive(&g, &h).shape(), (10, 0));
        assert_eq!(aggregate_feature_partitioned(&g, &h, 1024).shape(), (10, 0));
    }

    #[test]
    fn isolated_vertices_aggregate_to_zero() {
        let g = GraphBuilder::new(3).add_edge(0, 1).build();
        let h = DMatrix::filled(3, 2, 5.0);
        let y = aggregate_naive(&g, &h);
        assert_eq!(y.row(2), &[0.0, 0.0]); // vertex 2 isolated
        assert_eq!(y.row(0), &[5.0, 5.0]); // one neighbor
    }

    #[test]
    fn block_boundary_alignment() {
        // f not divisible by Q: last block is ragged; all kernels must
        // still cover every column exactly once.
        let g = rand_graph(20, 10, 5);
        for f in [1, 3, 7, 13] {
            let h = features(20, f);
            let y = aggregate_feature_partitioned(&g, &h, 32);
            let r = aggregate_reference(&g, &h);
            assert!(y.max_abs_diff(&r) < 1e-5, "f={f}");
        }
    }

    #[test]
    fn thread_count_invariance() {
        let g = rand_graph(60, 100, 6);
        let h = features(60, 24);
        let run = |threads| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| aggregate_feature_partitioned(&g, &h, 4096))
        };
        let a = run(1);
        let b = run(8);
        assert!(
            a.max_abs_diff(&b) < 1e-6,
            "results must not depend on thread count"
        );
    }
}
