//! Property-based tests of the propagation kernels and cost model.

use gsgcn_graph::builder::from_edges;
use gsgcn_graph::partition::range_partition;
use gsgcn_prop::cost_model::PropCostModel;
use gsgcn_prop::kernels;
use gsgcn_prop::propagator::{FeaturePropagator, PropMode};
use gsgcn_tensor::DMatrix;
use proptest::prelude::*;

fn graph_and_features() -> impl Strategy<Value = (gsgcn_graph::CsrGraph, DMatrix)> {
    (3usize..40, 1usize..24).prop_flat_map(|(n, f)| {
        let edges = proptest::collection::vec((0u32..40, 0u32..40), 0..120);
        let feats = proptest::collection::vec(-2.0f32..2.0, n * f);
        (Just(n), Just(f), edges, feats).prop_map(|(n, f, extra, data)| {
            let mut edges: Vec<(u32, u32)> =
                (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
            edges.extend(
                extra
                    .into_iter()
                    .filter(|&(a, b)| (a as usize) < n && (b as usize) < n && a != b),
            );
            (from_edges(n, &edges), DMatrix::from_vec(n, f, data))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All kernels agree with the serial reference for arbitrary graphs,
    /// feature widths and cache sizes.
    #[test]
    fn kernels_agree((g, h) in graph_and_features(), cache in 16usize..100_000, p in 1usize..5, q in 1usize..9) {
        let reference = kernels::aggregate_reference(&g, &h);
        let naive = kernels::aggregate_naive(&g, &h);
        prop_assert!(naive.max_abs_diff(&reference) < 1e-4);
        let part = kernels::aggregate_feature_partitioned(&g, &h, cache);
        prop_assert!(part.max_abs_diff(&reference) < 1e-4);
        let vp = range_partition(g.num_vertices(), p);
        let twod = kernels::aggregate_2d(&g, &h, &vp, q);
        prop_assert!(twod.max_abs_diff(&reference) < 1e-4);
    }

    /// Forward is a row-stochastic operation: constant vectors are fixed
    /// points (for non-isolated vertices).
    #[test]
    fn mean_aggregation_preserves_constants((g, _h) in graph_and_features(), c in -3.0f32..3.0) {
        let n = g.num_vertices();
        let constant = DMatrix::filled(n, 3, c);
        let prop_op = FeaturePropagator::new(PropMode::Naive);
        let y = prop_op.forward(&g, &constant);
        for v in 0..n {
            if g.degree(v as u32) > 0 {
                for &x in y.row(v) {
                    prop_assert!((x - c).abs() < 1e-4, "vertex {v}: {x} vs {c}");
                }
            }
        }
    }

    /// Backward is the exact adjoint of forward: ⟨Âh, g⟩ = ⟨h, Âᵀg⟩.
    #[test]
    fn backward_is_adjoint((g, h) in graph_and_features()) {
        let prop_op = FeaturePropagator::default();
        let n = g.num_vertices();
        let f = h.cols();
        let gmat = DMatrix::from_fn(n, f, |i, j| ((i * 5 + j * 3) % 7) as f32 * 0.3 - 1.0);
        let fwd = prop_op.forward(&g, &h);
        let bwd = prop_op.backward(&g, &gmat);
        let lhs: f64 = fwd.data().iter().zip(gmat.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let rhs: f64 = h.data().iter().zip(bwd.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Linearity: prop(αh) = α·prop(h).
    #[test]
    fn forward_linear((g, h) in graph_and_features(), alpha in -2.0f32..2.0) {
        let prop_op = FeaturePropagator::new(PropMode::Naive);
        let mut scaled = h.clone();
        gsgcn_tensor::ops::scale(&mut scaled, alpha);
        let a = prop_op.forward(&g, &scaled);
        let mut b = prop_op.forward(&g, &h);
        gsgcn_tensor::ops::scale(&mut b, alpha);
        prop_assert!(a.max_abs_diff(&b) < 1e-3);
    }

    /// Cost model: feature-only partitioning is feasible and within 2× of
    /// the brute-force optimum whenever Theorem 2's preconditions hold.
    #[test]
    fn theorem2_random_params(
        n in 100usize..10_000,
        d in 2.0f64..40.0,
        f in 64usize..2048,
        c in 1usize..64,
    ) {
        let m = PropCostModel::paper(n, d, f, c, 256 * 1024);
        prop_assume!(m.theorem2_applicable());
        let q = m.feature_only_q();
        prop_assert!(m.feasible(1, q, 1.0));
        let ratio = m.approximation_ratio(32, 4096);
        prop_assert!(ratio <= 2.0 + 1e-9, "ratio {ratio}");
        prop_assert!(ratio >= 1.0 - 1e-9);
    }

    /// g_comm lower bound: never below bytes_val·n·f.
    #[test]
    fn comm_lower_bound(
        n in 100usize..5000,
        d in 1.0f64..50.0,
        f in 16usize..1024,
        p in 1usize..16,
        q in 1usize..64,
    ) {
        let m = PropCostModel::paper(n, d, f, 4, 256 * 1024);
        let gamma = 1.0 / p as f64; // best possible replication
        prop_assert!(m.comm(p, q, gamma) >= m.bytes_val * n as f64 * f as f64 - 1e-6);
    }
}
