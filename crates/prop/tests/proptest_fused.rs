//! Property tests pinning the fused aggregate→GEMM pipeline to the
//! unfused `aggregate → matmul` composition, across all three GEMM
//! layouts it feeds (nn forward, nt input-gradient, tn weight-gradient
//! via the spilled `Z`), shapes straddling the packing-blocking
//! boundaries (MR = 8, per-tier NR ∈ {16, 32, 48}, MC = 64, KC = 256),
//! 1/2/4-thread pools (fused results must be bit-identical across thread
//! counts), and every microkernel tier the CPU can run (the fused entry
//! points route through the same runtime dispatch as the dense ones).

use gsgcn_graph::{CsrGraph, GraphBuilder};
use gsgcn_prop::fused::AggregatedRows;
use gsgcn_prop::kernels;
use gsgcn_prop::propagator::scale_rows_by_inv_degree;
use gsgcn_tensor::{gemm, DMatrix};
use proptest::prelude::*;

/// Vertex counts straddling MR/NR/MC block edges.
const N_DIMS: [usize; 8] = [1, 2, 7, 9, 33, 63, 65, 80];
/// Reduction widths straddling NR and KC (257 crosses the KC panel edge).
const F_DIMS: [usize; 5] = [1, 3, 8, 33, 257];
/// Output widths straddling NR.
const H_DIMS: [usize; 4] = [1, 8, 31, 33];
const THREADS: [usize; 3] = [1, 2, 4];

fn rand_graph(n: usize, extra: usize, seed: u64) -> CsrGraph {
    let mut edges: Vec<(u32, u32)> = if n > 1 {
        (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect()
    } else {
        Vec::new()
    };
    let mut s = seed | 1;
    for _ in 0..extra {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((s >> 33) as usize) % n;
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = ((s >> 33) as usize) % n;
        if a != b {
            edges.push((a as u32, b as u32));
        }
    }
    GraphBuilder::new(n).add_edges(edges).build()
}

fn mat(rows: usize, cols: usize, seed: u64) -> DMatrix {
    DMatrix::from_fn(rows, cols, |i, j| {
        let x = (seed as usize)
            .wrapping_mul(31)
            .wrapping_add(i * 131 + j * 17)
            % 23;
        x as f32 * 0.1 - 1.1
    })
}

fn in_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forward fusion (nn layout): `(Â·H)·W` fused ≡ aggregate, scale,
    /// then matmul — within 1e-4 at every blocking boundary and thread
    /// count, and bit-identical across thread counts.
    #[test]
    fn fused_nn_matches_composition(
        ni in 0..N_DIMS.len(), fi in 0..F_DIMS.len(), hi in 0..H_DIMS.len(),
        ti in 0..THREADS.len(), seed in any::<u64>(),
    ) {
        let (n, f, h) = (N_DIMS[ni], F_DIMS[fi], H_DIMS[hi]);
        let g = rand_graph(n, 2 * n, seed);
        let hm = mat(n, f, seed ^ 1);
        let w = mat(f, h, seed ^ 2);

        // Unfused reference composition (thread-count invariant itself).
        let mut agg = DMatrix::zeros(n, f);
        kernels::aggregate_feature_partitioned_into(&g, &hm, 4096, &mut agg);
        scale_rows_by_inv_degree(&g, &mut agg);
        let reference = gemm::matmul(&agg, &w);

        let run = |threads: usize| {
            in_pool(threads, || {
                let mut c = DMatrix::filled(n, h, f32::NAN);
                gemm::gemm_source_nn_v(
                    1.0, &AggregatedRows::mean(&g, hm.view()), w.view(), 0.0, c.view_mut(),
                );
                c
            })
        };
        let fused = run(THREADS[ti]);
        prop_assert!(
            fused.max_abs_diff(&reference) < 1e-4,
            "n={n} f={f} h={h} threads={}", THREADS[ti]
        );
        let fused_1t = run(1);
        prop_assert!(
            fused.max_abs_diff(&fused_1t) == 0.0,
            "fused result must be bit-identical across thread counts"
        );
    }

    /// Backward fusion (nt layout + spilled Z + tn consumer):
    /// `d_in += (Âᵀ·dY)·Wᵀ` fused ≡ aggregate then gemm_nt, the spilled
    /// `Z` ≡ the materialised aggregate, and the tn weight-gradient GEMM
    /// reading the spill ≡ the one reading the materialised matrix.
    #[test]
    fn fused_nt_spill_matches_composition(
        ni in 0..N_DIMS.len(), fi in 0..F_DIMS.len(), hi in 0..H_DIMS.len(),
        ti in 0..THREADS.len(), seed in any::<u64>(),
    ) {
        let (n, f, h) = (N_DIMS[ni], F_DIMS[fi], H_DIMS[hi]);
        let g = rand_graph(n, 2 * n, seed);
        // dY is n×h; W stored f×h; d_in is n×f; Z is n×h.
        let dy = mat(n, h, seed ^ 3);
        let w = mat(f, h, seed ^ 4);
        let input = mat(n, f, seed ^ 5);

        // Reference: Z materialised via the unfused kernel.
        let mut z_ref = DMatrix::zeros(n, h);
        kernels::aggregate_feature_partitioned_into(&g, &dy, 4096, &mut z_ref);
        let mut d_in_ref = mat(n, f, seed ^ 6);
        gemm::gemm_nt(1.0, &z_ref, &w, 1.0, &mut d_in_ref);
        let dw_ref = gemm::matmul_tn(&input, &z_ref);

        let (d_in, z) = in_pool(THREADS[ti], || {
            let mut d_in = mat(n, f, seed ^ 6);
            let mut z = DMatrix::zeros(0, 0);
            {
                let src = AggregatedRows::sum(&g, dy.view()).with_spill(&mut z);
                gemm::gemm_source_nt_v(1.0, &src, w.view(), 1.0, d_in.view_mut());
            }
            (d_in, z)
        });
        prop_assert!(z.max_abs_diff(&z_ref) < 1e-4, "spilled Z mismatch");
        prop_assert!(d_in.max_abs_diff(&d_in_ref) < 1e-4, "fused nt mismatch");
        // tn layout consuming the spill.
        let dw = gemm::matmul_tn(&input, &z);
        prop_assert!(dw.max_abs_diff(&dw_ref) < 1e-4, "tn-over-spill mismatch");
    }

    /// Microkernel-tier equivalence through the fused pipeline: for every
    /// tier this CPU can run, the producer-packed forward (nn) and
    /// backward (nt + spill) match the scalar-tier unfused composition
    /// within 1e-4, under 1/2/4-thread pools. This is what guarantees the
    /// PR 2 fusion gets each new explicit kernel "for free".
    #[test]
    fn fused_tier_equivalence(
        ni in 0..N_DIMS.len(), fi in 0..F_DIMS.len(), hi in 0..H_DIMS.len(),
        ti in 0..THREADS.len(), seed in any::<u64>(),
    ) {
        let (n, f, h) = (N_DIMS[ni], F_DIMS[fi], H_DIMS[hi]);
        let g = rand_graph(n, 2 * n, seed);
        let hm = mat(n, f, seed ^ 1);
        let w = mat(f, h, seed ^ 2);
        let wt = mat(h, f, seed ^ 7); // stored h×f, consumed as Wᵀ for nt

        // Scalar-tier unfused references: the unscaled aggregate doubles
        // as the backward path's Z.
        let (fwd_ref, z_ref, bwd_ref) = gemm::with_tier(gemm::Tier::Scalar, || {
            let mut agg = DMatrix::zeros(n, f);
            kernels::aggregate_feature_partitioned_into(&g, &hm, 4096, &mut agg);
            let z_ref = agg.clone();
            scale_rows_by_inv_degree(&g, &mut agg);
            let fwd = gemm::matmul(&agg, &w);
            let bwd = gemm::matmul_nt(&z_ref, &wt);
            (fwd, z_ref, bwd)
        });

        // The scalar tier is the reference composition's own kernel; only
        // the SIMD tiers need the equivalence check.
        for tier in gemm::available_tiers()
            .into_iter()
            .filter(|&t| t != gemm::Tier::Scalar)
        {
            let (fwd, z, bwd) = in_pool(THREADS[ti], || {
                gemm::with_tier(tier, || {
                    let mut fwd = DMatrix::filled(n, h, f32::NAN);
                    gemm::gemm_source_nn_v(
                        1.0, &AggregatedRows::mean(&g, hm.view()), w.view(), 0.0, fwd.view_mut(),
                    );
                    let mut z = DMatrix::zeros(0, 0);
                    let mut bwd = DMatrix::zeros(n, h);
                    {
                        let src = AggregatedRows::sum(&g, hm.view()).with_spill(&mut z);
                        gemm::gemm_source_nt_v(1.0, &src, wt.view(), 0.0, bwd.view_mut());
                    }
                    (fwd, z, bwd)
                })
            });
            prop_assert!(
                fwd.max_abs_diff(&fwd_ref) < 1e-4,
                "fused nn: tier {} vs scalar unfused, n={n} f={f} h={h} threads={}",
                tier.name(), THREADS[ti]
            );
            prop_assert!(
                z.max_abs_diff(&z_ref) < 1e-4,
                "spill: tier {} vs scalar unfused", tier.name()
            );
            prop_assert!(
                bwd.max_abs_diff(&bwd_ref) < 1e-4,
                "fused nt: tier {} vs scalar unfused", tier.name()
            );
        }
    }
}
