//! Property-based tests of the dense linear-algebra substrate.

use gsgcn_tensor::{gemm, ops, DMatrix};
use proptest::prelude::*;

/// Strategy: a matrix with bounded entries.
fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = DMatrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0, r * c)
            .prop_map(move |data| DMatrix::from_vec(r, c, data))
    })
}

/// Pair of multipliable matrices.
fn matmul_pair() -> impl Strategy<Value = (DMatrix, DMatrix)> {
    (1usize..12, 1usize..12, 1usize..12).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-2.0f32..2.0, m * k)
                .prop_map(move |d| DMatrix::from_vec(m, k, d)),
            proptest::collection::vec(-2.0f32..2.0, k * n)
                .prop_map(move |d| DMatrix::from_vec(k, n, d)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel blocked GEMM ≡ naive reference.
    #[test]
    fn gemm_matches_reference((a, b) in matmul_pair()) {
        let c = gemm::matmul(&a, &b);
        let r = gemm::matmul_reference(&a, &b);
        prop_assert!(c.max_abs_diff(&r) < 1e-3);
    }

    /// (AB)ᵀ = BᵀAᵀ via the nt/tn kernels.
    #[test]
    fn gemm_transpose_identity((a, b) in matmul_pair()) {
        let ab_t = gemm::matmul(&a, &b).transpose();
        let bt_at = gemm::matmul(&b.transpose(), &a.transpose());
        prop_assert!(ab_t.max_abs_diff(&bt_at) < 1e-3);
    }

    /// tn kernel ≡ explicit transpose then multiply.
    #[test]
    fn gemm_tn_consistent((a, b) in matmul_pair()) {
        // Aᵀ·B where A must be k×m: reuse a as the k×m operand.
        let c = gemm::matmul_tn(&a, &a);
        let r = gemm::matmul_reference(&a.transpose(), &a);
        prop_assert!(c.max_abs_diff(&r) < 1e-3);
        let _ = b;
    }

    /// Identity is neutral for matmul.
    #[test]
    fn gemm_identity_neutral(a in matrix(1..10, 1..10)) {
        let i = DMatrix::eye(a.cols());
        let c = gemm::matmul(&a, &i);
        prop_assert!(c.max_abs_diff(&a) < 1e-5);
    }

    /// Distributivity: A(B + C) = AB + AC.
    #[test]
    fn gemm_distributive((a, b) in matmul_pair(), scale in -1.0f32..1.0) {
        let mut c2 = b.clone();
        ops::scale(&mut c2, scale);
        let mut sum = b.clone();
        ops::add_assign(&mut sum, &c2);
        let lhs = gemm::matmul(&a, &sum);
        let mut rhs = gemm::matmul(&a, &b);
        ops::add_assign(&mut rhs, &gemm::matmul(&a, &c2));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(a in matrix(1..16, 1..16)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// concat/split round-trips.
    #[test]
    fn concat_split_roundtrip(a in matrix(1..10, 1..8), cols_b in 1usize..8) {
        let b = DMatrix::filled(a.rows(), cols_b, 0.5);
        let cat = ops::concat_cols(&a, &b);
        let (a2, b2) = ops::split_cols(&cat, a.cols());
        prop_assert_eq!(a2, a);
        prop_assert_eq!(b2, b);
    }

    /// ReLU output is non-negative and idempotent.
    #[test]
    fn relu_idempotent(mut a in matrix(1..10, 1..10)) {
        ops::relu_inplace(&mut a);
        prop_assert!(a.data().iter().all(|&x| x >= 0.0));
        let once = a.clone();
        ops::relu_inplace(&mut a);
        prop_assert_eq!(a, once);
    }

    /// Softmax rows are probability distributions.
    #[test]
    fn softmax_rows_are_distributions(mut a in matrix(1..8, 1..8)) {
        ops::softmax_rows_inplace(&mut a);
        prop_assert!(a.all_finite());
        for i in 0..a.rows() {
            let s: f32 = a.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(a.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    /// Sigmoid maps into (0, 1) and is monotone.
    #[test]
    fn sigmoid_bounded(mut a in matrix(1..8, 1..8)) {
        let orig = a.clone();
        ops::sigmoid_inplace(&mut a);
        for (o, s) in orig.data().iter().zip(a.data()) {
            prop_assert!((0.0..=1.0).contains(s));
            // monotonicity via derivative sign: larger input, larger output.
            let _ = o;
        }
    }

    /// gather_rows pulls the right rows.
    #[test]
    fn gather_rows_correct(a in matrix(1..12, 1..6), idx in proptest::collection::vec(0usize..12, 0..8)) {
        let idx: Vec<u32> = idx.into_iter().filter(|&i| i < a.rows()).map(|i| i as u32).collect();
        let g = a.gather_rows(&idx);
        prop_assert_eq!(g.rows(), idx.len());
        for (k, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(k), a.row(i as usize));
        }
    }

    /// Dropout keeps expectation roughly constant (inverted scaling).
    #[test]
    fn dropout_preserves_expectation(p in 0.05f32..0.8, stream in any::<u64>()) {
        let mut m = DMatrix::filled(40, 40, 1.0);
        ops::dropout_inplace(&mut m, p, stream);
        let mean: f32 = m.data().iter().sum::<f32>() / 1600.0;
        prop_assert!((mean - 1.0).abs() < 0.25, "mean {mean} at p={p}");
    }
}
