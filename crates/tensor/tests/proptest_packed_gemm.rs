//! Property tests pinning the packed register-blocked GEMM to the naive
//! triple-loop reference, for all three layouts, across shapes that
//! straddle every microkernel/blocking boundary (MR = 8, the per-tier
//! NR ∈ {16, 32, 48}, MC = 64, KC = 256), plus thread-count invariance
//! (mirroring `prop/kernels.rs`'s `thread_count_invariance`) and
//! microkernel-tier equivalence: every tier the CPU can run must agree
//! with the scalar reference tier on every layout, shape and pool size.

use gsgcn_tensor::{gemm, DMatrix};
use proptest::prelude::*;

/// Dimension values straddling the blocking boundaries (every tier's NR
/// — 16, 32, 48 — plus MR and MC edges), indexed by a proptest-chosen
/// selector so cases cover edges densely rather than uniformly.
const EDGE_DIMS: [usize; 14] = [1, 2, 7, 8, 9, 15, 17, 31, 32, 33, 47, 49, 65, 80];

/// `(A m×k, B k×n)` with every dimension drawn from the edge set.
fn edge_pair() -> impl Strategy<Value = (DMatrix, DMatrix)> {
    (
        0usize..EDGE_DIMS.len(),
        0usize..EDGE_DIMS.len(),
        0usize..EDGE_DIMS.len(),
    )
        .prop_flat_map(|(mi, ki, ni)| {
            let (m, k, n) = (EDGE_DIMS[mi], EDGE_DIMS[ki], EDGE_DIMS[ni]);
            (
                proptest::collection::vec(-2.0f32..2.0, m * k)
                    .prop_map(move |d| DMatrix::from_vec(m, k, d)),
                proptest::collection::vec(-2.0f32..2.0, k * n)
                    .prop_map(move |d| DMatrix::from_vec(k, n, d)),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// nn layout ≡ reference at blocking edges.
    #[test]
    fn packed_nn_matches_reference((a, b) in edge_pair()) {
        let c = gemm::matmul(&a, &b);
        let r = gemm::matmul_reference(&a, &b);
        prop_assert!(c.max_abs_diff(&r) < 5e-3, "shape {:?}·{:?}", a.shape(), b.shape());
    }

    /// tn layout ≡ explicit transpose then reference.
    #[test]
    fn packed_tn_matches_reference((a, b) in edge_pair()) {
        // A is k×m here: Aᵀ·B with the shared k dimension.
        let c = gemm::matmul_tn(&a, &a);
        let r = gemm::matmul_reference(&a.transpose(), &a);
        prop_assert!(c.max_abs_diff(&r) < 5e-3);
        let _ = b;
    }

    /// nt layout ≡ reference against the explicit transpose.
    #[test]
    fn packed_nt_matches_reference((a, b) in edge_pair()) {
        // A·Bᵀ needs B stored n×k: reuse b's transpose for a valid pair.
        let bt = b.transpose(); // n×k with n = b.cols()
        let c = gemm::matmul_nt(&a, &bt);
        let r = gemm::matmul_reference(&a, &b);
        prop_assert!(c.max_abs_diff(&r) < 5e-3);
    }

    /// The packed kernel agrees with the seed's unpacked kernel.
    #[test]
    fn packed_matches_seed_unpacked((a, b) in edge_pair()) {
        let packed = gemm::matmul(&a, &b);
        let unpacked = gemm::matmul_unpacked(&a, &b);
        prop_assert!(packed.max_abs_diff(&unpacked) < 5e-3);
    }

    /// α/β accumulation against a hand-computed model.
    #[test]
    fn alpha_beta_model((a, b) in edge_pair(), alpha in -2.0f32..2.0, beta in -2.0f32..2.0) {
        let mut c = DMatrix::filled(a.rows(), b.cols(), 1.0);
        gemm::gemm_nn(alpha, &a, &b, beta, &mut c);
        let r = gemm::matmul_reference(&a, &b);
        for i in 0..c.rows() {
            for j in 0..c.cols() {
                let want = alpha * r.get(i, j) + beta;
                prop_assert!((c.get(i, j) - want).abs() < 2e-2,
                    "({i},{j}): {} vs {want}", c.get(i, j));
            }
        }
    }

    /// Results are bit-identical across pool sizes — the property the
    /// trainer's `deterministic_given_seed_and_parallelism` relies on.
    #[test]
    fn thread_count_invariance((a, b) in edge_pair()) {
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| gemm::matmul(&a, &b))
        };
        let one = run(1);
        let eight = run(8);
        prop_assert_eq!(one, eight);
    }

    /// Microkernel-tier equivalence: every tier available on this CPU
    /// produces results within 1e-4 of the scalar reference tier, for all
    /// three layouts (nn/nt/tn), at blocking-boundary shapes, under
    /// 1/2/4-thread pools. `GSGCN_KERNEL` CI runs force one process-wide
    /// tier; this property forces each in turn inside one process.
    #[test]
    fn tier_equivalence_all_layouts((a, b) in edge_pair(), ti in 0..3usize) {
        let threads = [1usize, 2, 4][ti];
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let at = a.transpose();
        let bt = b.transpose();
        // `with_tier` wraps the GEMM calls *inside* the pool so the
        // override is visible on the thread the driver runs on.
        let run = |tier: gemm::Tier| {
            pool.install(|| {
                gemm::with_tier(tier, || {
                    (
                        gemm::matmul(&a, &b),
                        gemm::matmul_nt(&a, &bt),
                        gemm::matmul_tn(&at, &b),
                    )
                })
            })
        };
        let (r_nn, r_nt, r_tn) = run(gemm::Tier::Scalar);
        // Scalar is the reference itself — only the SIMD tiers need checking.
        for tier in gemm::available_tiers()
            .into_iter()
            .filter(|&t| t != gemm::Tier::Scalar)
        {
            let (c_nn, c_nt, c_tn) = run(tier);
            prop_assert!(
                c_nn.max_abs_diff(&r_nn) < 1e-4,
                "nn: tier {} vs scalar, shape {:?}·{:?}, {threads} threads",
                tier.name(), a.shape(), b.shape()
            );
            prop_assert!(
                c_nt.max_abs_diff(&r_nt) < 1e-4,
                "nt: tier {} vs scalar, {threads} threads", tier.name()
            );
            prop_assert!(
                c_tn.max_abs_diff(&r_tn) < 1e-4,
                "tn: tier {} vs scalar, {threads} threads", tier.name()
            );
        }
    }

    /// Strided column-half outputs equal the dense per-half products —
    /// the GCN forward's write pattern.
    #[test]
    fn strided_halves_match_dense((h, w1) in edge_pair(), seed in any::<u64>()) {
        let half = w1.cols();
        let w2 = DMatrix::from_fn(w1.rows(), half, |i, j| {
            ((i * 31 + j * 7 + seed as usize % 13) % 11) as f32 * 0.1 - 0.5
        });
        let mut out = DMatrix::filled(h.rows(), 2 * half, f32::NAN);
        gemm::gemm_nn_v(1.0, h.view(), w1.view(), 0.0, out.view_cols_mut(0, half));
        gemm::gemm_nn_v(1.0, h.view(), w2.view(), 0.0, out.view_cols_mut(half, 2 * half));
        let left = gemm::matmul(&h, &w1);
        let right = gemm::matmul(&h, &w2);
        for i in 0..h.rows() {
            for j in 0..half {
                prop_assert!((out.get(i, j) - left.get(i, j)).abs() < 1e-4);
                prop_assert!((out.get(i, j + half) - right.get(i, j)).abs() < 1e-4);
            }
        }
    }
}
