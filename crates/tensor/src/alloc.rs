//! Allocation accounting for the training hot path.
//!
//! Every fresh matrix buffer ([`crate::DMatrix`] constructors, capacity
//! growth in [`crate::DMatrix::ensure_shape`]) and every scratch-arena miss
//! ([`crate::scratch`]) is recorded against a **thread-local** counter.
//! Regression tests snapshot the counter around a warm training step to
//! assert the hot path is allocation-free; production code pays one
//! relaxed thread-local increment per matrix construction, which is noise
//! next to the buffer zeroing it accompanies.
//!
//! The counter is thread-local on purpose: it makes tests immune to
//! allocations from concurrently running tests, at the price of not seeing
//! worker-thread allocations — which is exactly the right trade for
//! "assert zero" tests that run the measured region on a pinned
//! single-thread pool.

use std::cell::Cell;

thread_local! {
    static MATRIX_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Total matrix-buffer allocations recorded on this thread.
pub fn matrix_allocations() -> u64 {
    MATRIX_ALLOCS.with(|c| c.get())
}

/// Record one buffer allocation (crate-internal).
#[inline]
pub(crate) fn record_alloc() {
    MATRIX_ALLOCS.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DMatrix;

    #[test]
    fn constructors_are_counted() {
        let before = matrix_allocations();
        let _a = DMatrix::zeros(4, 4);
        let _b = DMatrix::from_fn(2, 2, |_, _| 1.0);
        assert!(matrix_allocations() >= before + 2);
    }

    #[test]
    fn ensure_shape_counts_only_growth() {
        let mut m = DMatrix::zeros(8, 8);
        let before = matrix_allocations();
        m.ensure_shape(4, 4); // shrink: reuses capacity
        m.ensure_shape(8, 8); // regrow within capacity
        assert_eq!(matrix_allocations(), before);
        m.ensure_shape(16, 16); // genuine growth
        assert_eq!(matrix_allocations(), before + 1);
    }
}
