//! Storage-precision selection (`f32` vs `bf16`), following the
//! `GSGCN_KERNEL` dispatch policy.
//!
//! Precision controls how feature/activation bytes are *stored* — GEMM
//! panels, shard feature payloads, serving cache rows. Arithmetic always
//! accumulates in f32 (see [`crate::ukernel`]'s precision section), so
//! switching to [`Precision::Bf16`] changes only the per-element input
//! rounding, bounded by 2⁻⁸ relative error.
//!
//! Resolution order (the established env policy):
//!
//! 1. a thread-local override installed by [`with_precision`] (tests);
//! 2. a process-wide value pinned by [`force_global`] (the CLI's
//!    `--precision` flag — flag beats env);
//! 3. the `GSGCN_PRECISION` environment variable (`f32`, `bf16`, `auto`/
//!    unset → f32), resolved once; an unknown value **panics** — a
//!    misconfigured precision matrix run must be loud, never a silent
//!    f32 fallback;
//! 4. [`Precision::F32`], the default — the f32 path stays bit-identical
//!    to a build without this module.

use std::cell::Cell;
use std::sync::OnceLock;

/// How feature/activation bytes are stored on the hot paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Precision {
    /// Full f32 storage — the bit-identical master path.
    #[default]
    F32,
    /// bf16 storage with f32 accumulation: half the bytes moved, ≤ 2⁻⁸
    /// relative input rounding per element.
    Bf16,
}

/// Both precisions, f32 first (the default).
pub const ALL_PRECISIONS: [Precision; 2] = [Precision::F32, Precision::Bf16];

impl Precision {
    /// The `GSGCN_PRECISION` / `--precision` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
        }
    }

    /// Parse a precision name (case-insensitive). `auto` is handled by
    /// the caller; returns `None` for it and unknown values.
    pub fn parse(s: &str) -> Option<Precision> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Some(Precision::F32),
            "bf16" => Some(Precision::Bf16),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

static GLOBAL: OnceLock<Precision> = OnceLock::new();

/// Pin the process-wide precision (the CLI's `--precision` flag; flag >
/// env). Must run before the first [`current`] resolves the global —
/// afterwards the earlier value wins, and this returns it.
pub fn force_global(p: Precision) -> Precision {
    *GLOBAL.get_or_init(|| p)
}

/// Resolve `GSGCN_PRECISION` (no flag override). Panics on an unknown
/// value — misconfiguration must be loud.
fn from_env() -> Precision {
    match std::env::var("GSGCN_PRECISION") {
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("auto") => Precision::parse(&v)
            .unwrap_or_else(|| panic!("GSGCN_PRECISION={v:?} — expected f32, bf16 or auto")),
        _ => Precision::F32,
    }
}

thread_local! {
    /// Per-thread precision override (see [`with_precision`]).
    static FORCED: Cell<Option<Precision>> = const { Cell::new(None) };
}

/// The precision the current thread's next forward pass will store at.
pub fn current() -> Precision {
    FORCED
        .get()
        .unwrap_or_else(|| *GLOBAL.get_or_init(from_env))
}

/// Run `f` with this thread storing at `p`. Restored on exit (including
/// unwind). Like [`crate::ukernel::with_tier`], the override must wrap
/// the call that *reads* the precision (the layer forward), not a pool
/// boundary around it.
pub fn with_precision<R>(p: Precision, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Precision>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED.set(self.0);
        }
    }
    let _restore = Restore(FORCED.replace(Some(p)));
    f()
}

/// The per-element relative rounding bound of `p`'s storage: 0 for f32,
/// 2⁻⁸ for bf16 (7 explicit mantissa bits, round-to-nearest-even).
/// Tolerance-banded equivalence tests scale their bounds from this; see
/// [`rel_tolerance`] for the composed model.
pub fn unit_roundoff(p: Precision) -> f32 {
    match p {
        Precision::F32 => 0.0,
        Precision::Bf16 => 1.0 / 256.0,
    }
}

/// Relative-error band for comparing a `p`-storage pipeline against the
/// f32 reference, composed over `depth` storage round-trips each mixing
/// `fan_in` inputs: every stored element carries ≤ u = 2⁻⁸ relative
/// rounding; a dot product over `fan_in` such inputs (both operands
/// stored) keeps relative error ≤ ~2u + O(u²), and depth compounds the
/// bound per layer. A further ×4 headroom absorbs cancellation in
/// near-zero sums and the f32 accumulation itself. `fan_in` enters only
/// logarithmically (accumulation is f32-exact per element; errors are
/// signed and mostly cancel): we use `2u·depth·(2 + log2(fan_in)/8)`,
/// validated empirically by the precision-equivalence proptests.
pub fn rel_tolerance(p: Precision, depth: usize, fan_in: usize) -> f32 {
    let u = unit_roundoff(p);
    if u == 0.0 {
        return 1e-6; // pure f32 re-ordering slack
    }
    let fan = (fan_in.max(2) as f32).log2() / 8.0;
    2.0 * u * depth.max(1) as f32 * (2.0 + fan) * 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for p in ALL_PRECISIONS {
            assert_eq!(Precision::parse(p.name()), Some(p));
            assert_eq!(Precision::parse(&p.name().to_uppercase()), Some(p));
        }
        assert_eq!(Precision::parse("auto"), None);
        assert_eq!(Precision::parse("fp16"), None);
    }

    #[test]
    fn with_precision_overrides_and_restores() {
        let base = current();
        with_precision(Precision::Bf16, || {
            assert_eq!(current(), Precision::Bf16);
            with_precision(Precision::F32, || assert_eq!(current(), Precision::F32));
            assert_eq!(current(), Precision::Bf16);
        });
        assert_eq!(current(), base);
    }

    #[test]
    fn with_precision_restores_on_panic() {
        let base = current();
        let r = std::panic::catch_unwind(|| with_precision(Precision::Bf16, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(current(), base);
    }

    #[test]
    fn tolerance_band_shape() {
        assert_eq!(unit_roundoff(Precision::F32), 0.0);
        assert!(rel_tolerance(Precision::F32, 3, 1000) < 1e-5);
        let t1 = rel_tolerance(Precision::Bf16, 1, 64);
        let t3 = rel_tolerance(Precision::Bf16, 3, 64);
        assert!(t1 > 0.0 && t3 > 2.9 * t1, "depth must widen the band");
        assert!(t3 < 0.5, "band must stay far under the F1 budget");
    }
}
