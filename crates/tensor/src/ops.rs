//! Elementwise and structural kernels used by GCN training.
//!
//! All in-place kernels parallelise over rows on the current rayon pool;
//! callers that need single-threaded execution install a 1-thread pool.

use crate::matrix::DMatrix;
use rayon::prelude::*;

/// In-place ReLU: `x = max(x, 0)`.
pub fn relu_inplace(m: &mut DMatrix) {
    m.data_mut().par_iter_mut().for_each(|x| {
        if *x < 0.0 {
            *x = 0.0;
        }
    });
}

/// ReLU backward: zero `grad` wherever the forward *output* was zero.
/// (`act` is the post-ReLU activation, so `act > 0 ⇔ input > 0`.)
pub fn relu_backward_inplace(grad: &mut DMatrix, act: &DMatrix) {
    assert_eq!(grad.shape(), act.shape());
    grad.data_mut()
        .par_iter_mut()
        .zip(act.data().par_iter())
        .for_each(|(g, &a)| {
            if a <= 0.0 {
                *g = 0.0;
            }
        });
}

/// In-place logistic sigmoid.
pub fn sigmoid_inplace(m: &mut DMatrix) {
    m.data_mut().par_iter_mut().for_each(|x| {
        *x = 1.0 / (1.0 + (-*x).exp());
    });
}

/// Row-wise softmax (numerically stabilised by the row max).
pub fn softmax_rows_inplace(m: &mut DMatrix) {
    m.par_rows_mut().for_each(|row| {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        let inv = 1.0 / sum;
        for x in row.iter_mut() {
            *x *= inv;
        }
    });
}

/// `a += b` elementwise.
pub fn add_assign(a: &mut DMatrix, b: &DMatrix) {
    assert_eq!(a.shape(), b.shape());
    a.data_mut()
        .par_iter_mut()
        .zip(b.data().par_iter())
        .for_each(|(x, &y)| *x += y);
}

/// `a += alpha * b` (axpy).
pub fn axpy(a: &mut DMatrix, alpha: f32, b: &DMatrix) {
    assert_eq!(a.shape(), b.shape());
    a.data_mut()
        .par_iter_mut()
        .zip(b.data().par_iter())
        .for_each(|(x, &y)| *x = y.mul_add(alpha, *x));
}

/// `a *= alpha`.
pub fn scale(a: &mut DMatrix, alpha: f32) {
    a.data_mut().par_iter_mut().for_each(|x| *x *= alpha);
}

/// Column-wise concatenation `[left | right]` — the neighbor‖self concat
/// of Alg. 1 line 9.
pub fn concat_cols(left: &DMatrix, right: &DMatrix) -> DMatrix {
    assert_eq!(left.rows(), right.rows(), "row counts must match");
    let (n, fl, fr) = (left.rows(), left.cols(), right.cols());
    let mut out = DMatrix::zeros(n, fl + fr);
    out.par_rows_mut().enumerate().for_each(|(i, row)| {
        row[..fl].copy_from_slice(left.row(i));
        row[fl..].copy_from_slice(right.row(i));
    });
    out
}

/// Split a concatenated matrix back into `(left, right)` with `fl` /
/// remaining columns — the backward of [`concat_cols`].
pub fn split_cols(m: &DMatrix, fl: usize) -> (DMatrix, DMatrix) {
    assert!(fl <= m.cols());
    let (n, fr) = (m.rows(), m.cols() - fl);
    let mut left = DMatrix::zeros(n, fl);
    let mut right = DMatrix::zeros(n, fr);
    if fl == 0 || fr == 0 {
        // One side is zero-width: the other is a plain copy.
        if fl > 0 {
            left.data_mut().copy_from_slice(m.data());
        }
        if fr > 0 {
            right.data_mut().copy_from_slice(m.data());
        }
        return (left, right);
    }
    left.data_mut()
        .par_chunks_exact_mut(fl)
        .zip(right.data_mut().par_chunks_exact_mut(fr))
        .enumerate()
        .for_each(|(i, (l, r))| {
            let row = m.row(i);
            l.copy_from_slice(&row[..fl]);
            r.copy_from_slice(&row[fl..]);
        });
    (left, right)
}

/// Inverted-dropout forward: zero each element with probability `p` and
/// scale survivors by `1/(1-p)`. The mask is returned for the backward
/// pass. `rng_stream` seeds a counter-based generator so the mask is
/// deterministic per call site.
pub fn dropout_inplace(m: &mut DMatrix, p: f32, rng_stream: u64) -> Vec<bool> {
    let mut mask = Vec::new();
    dropout_inplace_with(m, p, rng_stream, &mut mask);
    mask
}

/// Buffer-reusing variant of [`dropout_inplace`]: the mask is written into
/// `mask` (resized as needed), so a warm training loop reuses one mask
/// buffer per layer instead of allocating each step.
pub fn dropout_inplace_with(m: &mut DMatrix, p: f32, rng_stream: u64, mask: &mut Vec<bool>) {
    assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
    if p == 0.0 {
        mask.clear();
        mask.resize(m.data().len(), true);
        return;
    }
    let scale = 1.0 / (1.0 - p);
    let threshold = (p as f64 * (u32::MAX as f64 + 1.0)) as u64;
    mask.clear();
    mask.resize(m.data().len(), false);
    m.data_mut()
        .par_iter_mut()
        .zip(mask.par_iter_mut())
        .enumerate()
        .for_each(|(i, (x, keep))| {
            // SplitMix64 on (stream, index): deterministic, parallel-safe.
            let mut z = rng_stream
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            if (z & 0xFFFF_FFFF) < threshold {
                *x = 0.0;
            } else {
                *x *= scale;
                *keep = true;
            }
        });
}

/// Dropout backward: apply the saved mask and survivor scaling to `grad`.
pub fn dropout_backward_inplace(grad: &mut DMatrix, mask: &[bool], p: f32) {
    assert_eq!(grad.data().len(), mask.len());
    let scale = 1.0 / (1.0 - p);
    grad.data_mut()
        .par_iter_mut()
        .zip(mask.par_iter())
        .for_each(|(g, &keep)| {
            if keep {
                *g *= scale;
            } else {
                *g = 0.0;
            }
        });
}

/// Mean of every element (used in loss reductions).
pub fn mean(m: &DMatrix) -> f32 {
    if m.data().is_empty() {
        return 0.0;
    }
    m.data().iter().map(|&x| x as f64).sum::<f64>() as f32 / m.data().len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_backward() {
        let mut m = DMatrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        relu_inplace(&mut m);
        assert_eq!(m.data(), &[0.0, 0.0, 2.0, 0.0]);
        let mut g = DMatrix::filled(1, 4, 1.0);
        relu_backward_inplace(&mut g, &m);
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn sigmoid_values() {
        let mut m = DMatrix::from_vec(1, 3, vec![0.0, 100.0, -100.0]);
        sigmoid_inplace(&mut m);
        assert!((m.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((m.get(0, 1) - 1.0).abs() < 1e-6);
        assert!(m.get(0, 2) < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = DMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        softmax_rows_inplace(&mut m);
        for i in 0..2 {
            let s: f32 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
        // Large inputs must not overflow (stabilised by max subtraction).
        assert!(m.all_finite());
        assert!((m.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn add_axpy_scale() {
        let mut a = DMatrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = DMatrix::from_vec(1, 2, vec![10.0, 20.0]);
        add_assign(&mut a, &b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        axpy(&mut a, 0.5, &b);
        assert_eq!(a.data(), &[16.0, 32.0]);
        scale(&mut a, 2.0);
        assert_eq!(a.data(), &[32.0, 64.0]);
    }

    #[test]
    fn concat_split_roundtrip() {
        let l = DMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
        let r = DMatrix::from_fn(3, 4, |i, j| 100.0 + (i * 4 + j) as f32);
        let cat = concat_cols(&l, &r);
        assert_eq!(cat.shape(), (3, 6));
        assert_eq!(cat.get(1, 1), 3.0);
        assert_eq!(cat.get(1, 2), 104.0);
        let (l2, r2) = split_cols(&cat, 2);
        assert_eq!(l2, l);
        assert_eq!(r2, r);
    }

    #[test]
    fn split_degenerate_widths() {
        let m = DMatrix::from_fn(2, 3, |i, j| (i + j) as f32);
        let (l, r) = split_cols(&m, 0);
        assert_eq!(l.shape(), (2, 0));
        assert_eq!(r, m);
        let (l, r) = split_cols(&m, 3);
        assert_eq!(l, m);
        assert_eq!(r.shape(), (2, 0));
    }

    #[test]
    fn dropout_deterministic_and_scaled() {
        let mut a = DMatrix::filled(10, 10, 1.0);
        let mut b = DMatrix::filled(10, 10, 1.0);
        let ma = dropout_inplace(&mut a, 0.5, 7);
        let mb = dropout_inplace(&mut b, 0.5, 7);
        assert_eq!(ma, mb);
        assert_eq!(a, b);
        // Survivors scaled by 2.0.
        for (&x, &keep) in a.data().iter().zip(&ma) {
            assert_eq!(x, if keep { 2.0 } else { 0.0 });
        }
        // Roughly half survive.
        let kept = ma.iter().filter(|&&k| k).count();
        assert!((30..=70).contains(&kept), "kept {kept}/100");
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let mut a = DMatrix::filled(2, 2, 3.0);
        let mask = dropout_inplace(&mut a, 0.0, 1);
        assert!(mask.iter().all(|&k| k));
        assert_eq!(a, DMatrix::filled(2, 2, 3.0));
    }

    #[test]
    fn dropout_backward_applies_mask() {
        let mut fwd = DMatrix::filled(1, 4, 1.0);
        let mask = dropout_inplace(&mut fwd, 0.25, 3);
        let mut g = DMatrix::filled(1, 4, 1.0);
        dropout_backward_inplace(&mut g, &mask, 0.25);
        for (gv, &keep) in g.data().iter().zip(&mask) {
            assert_eq!(*gv, if keep { 1.0 / 0.75 } else { 0.0 });
        }
    }

    #[test]
    fn mean_value() {
        let m = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert!((mean(&m) - 2.5).abs() < 1e-6);
        assert_eq!(mean(&DMatrix::zeros(0, 0)), 0.0);
    }
}
