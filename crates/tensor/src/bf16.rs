//! `bf16` storage element: the top 16 bits of an IEEE-754 `f32`.
//!
//! The fused GCN layer is memory-bandwidth-bound (ROADMAP item 4), so the
//! cheapest FLOP-preserving lever is halving the bytes that move: features,
//! activations, shard payloads and cache rows are *stored* as bf16 while
//! every accumulation stays in f32 registers. bf16 keeps f32's full 8-bit
//! exponent — no range surprises, `±inf`/`NaN` round-trip — and trades
//! mantissa bits (7 vs 23) for a 2× density win. Widening is a 16-bit
//! shift (`(bits as u32) << 16`), which vectorises to one
//! `_mm512_slli_epi32` per 16 elements; narrowing uses round-to-nearest-
//! even so quantisation is unbiased and deterministic.
//!
//! The type is a `#[repr(transparent)]` wrapper over `u16`, so `[Bf16]`
//! slices can be reinterpreted as `[u16]` for raw I/O (shard files, cache
//! rows) without copies.

/// One bf16 value: sign, 8 exponent bits, 7 mantissa bits.
#[repr(transparent)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bf16(pub u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);

    /// Round `x` to the nearest bf16, ties to even (matching hardware
    /// `VCVTNEPS2BF16` semantics). NaN payloads are truncated but kept
    /// quiet; infinities and zeros are exact.
    #[inline]
    pub fn from_f32(x: f32) -> Bf16 {
        let bits = x.to_bits();
        if x.is_nan() {
            // Keep it a NaN even if the payload's top bits are all zero.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round-to-nearest-even: add 0x7FFF plus the lowest kept bit, so
        // a tie (discarded half exactly 0x8000) rounds to the even kept
        // mantissa. Overflow carries into the exponent correctly and
        // saturates to ±inf at the top of the range.
        let round = 0x7FFF + ((bits >> 16) & 1);
        Bf16((bits.wrapping_add(round) >> 16) as u16)
    }

    /// Exact widening back to f32 (every bf16 is representable).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }
}

/// Quantise `src` into `dst` (round-to-nearest-even). Panics on length
/// mismatch.
pub fn quantize_slice(src: &[f32], dst: &mut [Bf16]) {
    assert_eq!(src.len(), dst.len(), "quantize length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = Bf16::from_f32(s);
    }
}

/// Widen `src` into `dst`. Panics on length mismatch.
pub fn widen_slice(src: &[Bf16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "widen length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

/// Reinterpret a `[u16]` slice (e.g. a shard payload or cache row) as
/// bf16 values. Zero-cost: `Bf16` is `repr(transparent)` over `u16`.
#[inline]
pub fn from_bits_slice(bits: &[u16]) -> &[Bf16] {
    // SAFETY: Bf16 is repr(transparent) over u16 — identical layout,
    // alignment and validity.
    unsafe { std::slice::from_raw_parts(bits.as_ptr() as *const Bf16, bits.len()) }
}

/// Reinterpret a `[Bf16]` slice as raw `u16` bit patterns for I/O.
#[inline]
pub fn to_bits_slice(vals: &[Bf16]) -> &[u16] {
    // SAFETY: as above, in the other direction.
    unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u16, vals.len()) }
}

/// Mutable [`from_bits_slice`]: view a raw `u16` scratch buffer as bf16
/// storage (the GEMM driver packs panels into `u16` scratch this way).
#[inline]
pub fn from_bits_slice_mut(bits: &mut [u16]) -> &mut [Bf16] {
    // SAFETY: Bf16 is repr(transparent) over u16; the borrow is unique.
    unsafe { std::slice::from_raw_parts_mut(bits.as_mut_ptr() as *mut Bf16, bits.len()) }
}

/// Borrowed row-major bf16 matrix view — the storage-side twin of
/// [`crate::MatRef`]. No stride support: bf16 matrices are always whole
/// (quantised activation panels, shard feature blocks), never column
/// slices.
#[derive(Clone, Copy, Debug)]
pub struct Bf16MatRef<'a> {
    data: &'a [Bf16],
    rows: usize,
    cols: usize,
}

impl<'a> Bf16MatRef<'a> {
    /// View `data` as a `rows × cols` matrix. Panics if the length does
    /// not match.
    pub fn new(data: &'a [Bf16], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "bf16 view shape mismatch");
        Bf16MatRef { data, rows, cols }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a bf16 slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [Bf16] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole backing slice.
    pub fn data(&self) -> &'a [Bf16] {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        // Anything with ≤ 7 mantissa bits survives the trip exactly.
        for &x in &[
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            96.0,
            -0.125,
            1.5,
            255.0,
            2.0f32.powi(100),
            -2.0f32.powi(-100),
        ] {
            let b = Bf16::from_f32(x);
            assert_eq!(b.to_f32(), x, "{x} failed to round-trip");
        }
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
        assert!(Bf16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn rne_ties_round_to_even() {
        // 1.0 = 0x3F80_0000. The bf16 lattice around it steps by 2^-7.
        // A value exactly halfway between two bf16 neighbors must round
        // to the one with an even (lsb = 0) mantissa.
        let lo = f32::from_bits(0x3F80_0000); // 1.0, mantissa even
        let hi = f32::from_bits(0x3F81_0000); // next bf16 up, mantissa odd
        let tie = f32::from_bits(0x3F80_8000); // exactly halfway
        assert_eq!(Bf16::from_f32(tie).to_f32(), lo, "tie must go even");
        // Just above the tie rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(above).to_f32(), hi);
        // Halfway between an odd-mantissa value and the next even one
        // rounds *up* to the even.
        let hi2 = f32::from_bits(0x3F82_0000);
        let tie2 = f32::from_bits(0x3F81_8000);
        assert_eq!(Bf16::from_f32(tie2).to_f32(), hi2, "tie must go even");
    }

    #[test]
    fn rounding_is_monotone() {
        // Quantisation must preserve ordering: x ≤ y ⇒ q(x) ≤ q(y).
        let mut prev = f32::NEG_INFINITY;
        let mut prev_q = f32::NEG_INFINITY;
        for i in 0..20_000 {
            let x = -4.0 + i as f32 * 4e-4;
            let q = Bf16::from_f32(x).to_f32();
            assert!(x >= prev);
            assert!(q >= prev_q, "q({x}) = {q} < q({prev}) = {prev_q}");
            prev = x;
            prev_q = q;
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // |q(x) - x| ≤ 2^-8 · |x| (half a ulp at 7 mantissa bits).
        for i in 1..10_000 {
            let x = i as f32 * 0.37 - 1850.0;
            if x == 0.0 {
                continue;
            }
            let q = Bf16::from_f32(x).to_f32();
            let rel = ((q - x) / x).abs();
            assert!(rel <= 1.0 / 256.0, "x = {x}: rel err {rel}");
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        // Values above the largest finite bf16 round up to +inf through
        // the exponent carry, never wrap.
        let max_bf16 = f32::from_bits(0x7F7F_0000);
        assert_eq!(Bf16::from_f32(max_bf16).to_f32(), max_bf16);
        assert_eq!(Bf16::from_f32(f32::MAX).to_f32(), f32::INFINITY);
    }

    #[test]
    fn slice_helpers_and_bit_reinterpretation() {
        let src = [1.0f32, -2.5, 0.33, 1e20];
        let mut q = [Bf16::ZERO; 4];
        quantize_slice(&src, &mut q);
        let bits = to_bits_slice(&q);
        let back = from_bits_slice(bits);
        let mut wide = [0f32; 4];
        widen_slice(back, &mut wide);
        for (w, s) in wide.iter().zip(&src) {
            assert!(((w - s) / s).abs() <= 1.0 / 256.0);
        }
    }

    #[test]
    fn mat_ref_rows() {
        let vals: Vec<Bf16> = (0..6).map(|i| Bf16::from_f32(i as f32)).collect();
        let m = Bf16MatRef::new(&vals, 2, 3);
        assert_eq!(m.row(1)[0].to_f32(), 3.0);
        assert_eq!((m.rows(), m.cols()), (2, 3));
    }
}
