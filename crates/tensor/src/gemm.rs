//! Parallel cache-blocked GEMM — the workspace's `cblas_dgemm` replacement.
//!
//! Three layout-specialised kernels cover every multiply in GCN training:
//!
//! * [`matmul`] (`C = A·B`) — forward weight application `H·W`;
//! * [`matmul_tn`] (`C = Aᵀ·B`) — weight gradients `Hᵀ·dY`;
//! * [`matmul_nt`] (`C = A·Bᵀ`) — input gradients `dY·Wᵀ`.
//!
//! Each kernel parallelises over row blocks of `C` with rayon (so the
//! caller's thread-pool `install` controls the core count) and blocks the
//! reduction dimension to keep the active panel of `B` in cache. The inner
//! loops are written so LLVM auto-vectorises them (contiguous `mul_add`
//! over rows).

use crate::matrix::DMatrix;
use rayon::prelude::*;

/// Reduction-dimension block size (panel of B kept hot in L1/L2).
const KC: usize = 256;
/// Minimum per-thread work (in f32 mul-adds) before splitting rows.
const PAR_GRAIN: usize = 1 << 14;

/// `C = A·B`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let mut c = DMatrix::zeros(a.rows(), b.cols());
    gemm_nn(1.0, a, b, 0.0, &mut c);
    c
}

/// `C = Aᵀ·B` (A is `k × m`, B is `k × n`, C is `m × n`).
pub fn matmul_tn(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let mut c = DMatrix::zeros(a.cols(), b.cols());
    gemm_tn(1.0, a, b, 0.0, &mut c);
    c
}

/// `C = A·Bᵀ` (A is `m × k`, B is `n × k`, C is `m × n`).
pub fn matmul_nt(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let mut c = DMatrix::zeros(a.rows(), b.rows());
    gemm_nt(1.0, a, b, 0.0, &mut c);
    c
}

/// `C = α·A·B + β·C`.
pub fn gemm_nn(alpha: f32, a: &DMatrix, b: &DMatrix, beta: f32, c: &mut DMatrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must match: A is {m}x{k}, B is {kb}x{n}");
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    scale_inplace(c, beta);
    if k == 0 {
        return;
    }

    let a_data = a.data();
    let b_data = b.data();
    let rows_per_task = rows_per_task(m, n, k);
    c.data_mut()
        .par_chunks_mut(rows_per_task * n)
        .enumerate()
        .for_each(|(t, c_block)| {
            let i0 = t * rows_per_task;
            let rows_here = c_block.len() / n;
            // k-blocked "ikj": for each k-panel, rank-1 style updates with a
            // contiguous inner loop over the C row and B row.
            let mut k0 = 0;
            while k0 < k {
                let k1 = (k0 + KC).min(k);
                for li in 0..rows_here {
                    let a_row = &a_data[(i0 + li) * k..(i0 + li + 1) * k];
                    let c_row = &mut c_block[li * n..(li + 1) * n];
                    for kk in k0..k1 {
                        let aik = alpha * a_row[kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b_data[kk * n..(kk + 1) * n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv = bv.mul_add(aik, *cv);
                        }
                    }
                }
                k0 = k1;
            }
        });
}

/// `C = α·Aᵀ·B + β·C` where A is `k × m` (so `Aᵀ` is `m × k`), B is `k × n`.
pub fn gemm_tn(alpha: f32, a: &DMatrix, b: &DMatrix, beta: f32, c: &mut DMatrix) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must match: Aᵀ is {m}x{k}, B is {kb}x{n}");
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    scale_inplace(c, beta);
    if k == 0 {
        return;
    }

    let a_data = a.data();
    let b_data = b.data();
    let rows_per_task = rows_per_task(m, n, k);
    c.data_mut()
        .par_chunks_mut(rows_per_task * n)
        .enumerate()
        .for_each(|(t, c_block)| {
            let i0 = t * rows_per_task;
            let rows_here = c_block.len() / n;
            let mut k0 = 0;
            while k0 < k {
                let k1 = (k0 + KC).min(k);
                for li in 0..rows_here {
                    let i = i0 + li; // column index into A
                    let c_row = &mut c_block[li * n..(li + 1) * n];
                    for kk in k0..k1 {
                        let aik = alpha * a_data[kk * m + i];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b_data[kk * n..(kk + 1) * n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv = bv.mul_add(aik, *cv);
                        }
                    }
                }
                k0 = k1;
            }
        });
}

/// `C = α·A·Bᵀ + β·C` where A is `m × k`, B is `n × k`.
pub fn gemm_nt(alpha: f32, a: &DMatrix, b: &DMatrix, beta: f32, c: &mut DMatrix) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "inner dimensions must match: A is {m}x{k}, Bᵀ is {kb}x{n}");
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    scale_inplace(c, beta);
    if k == 0 {
        return;
    }

    let a_data = a.data();
    let b_data = b.data();
    let rows_per_task = rows_per_task(m, n, k);
    c.data_mut()
        .par_chunks_mut(rows_per_task * n)
        .enumerate()
        .for_each(|(t, c_block)| {
            let i0 = t * rows_per_task;
            let rows_here = c_block.len() / n;
            for li in 0..rows_here {
                let a_row = &a_data[(i0 + li) * k..(i0 + li + 1) * k];
                let c_row = &mut c_block[li * n..(li + 1) * n];
                for (j, cv) in c_row.iter_mut().enumerate() {
                    // Dot product of two contiguous rows — vectorises.
                    let b_row = &b_data[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        acc = av.mul_add(bv, acc);
                    }
                    *cv += alpha * acc;
                }
            }
        });
}

/// Naive triple-loop reference, used by tests and benches as ground truth.
pub fn matmul_reference(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb);
    let mut c = DMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64; // f64 accumulation for a tighter reference
            for l in 0..k {
                acc += a.get(i, l) as f64 * b.get(l, j) as f64;
            }
            c.set(i, j, acc as f32);
        }
    }
    c
}

fn scale_inplace(c: &mut DMatrix, beta: f32) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        c.data_mut().iter_mut().for_each(|x| *x *= beta);
    }
}

/// Rows of C per rayon task, sized so each task has at least `PAR_GRAIN`
/// mul-adds (avoids oversplitting tiny matrices).
fn rows_per_task(m: usize, n: usize, k: usize) -> usize {
    let work_per_row = n * k;
    (PAR_GRAIN / work_per_row.max(1)).clamp(1, m.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize, scale: f32) -> DMatrix {
        // Bounded values keep f32 accumulation error well below tolerances.
        DMatrix::from_fn(rows, cols, |i, j| {
            (((i * cols + j) % 17) as f32 * 0.05 - 0.4) * scale
        })
    }

    #[test]
    fn matmul_matches_reference() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 9, 33), (64, 128, 32)] {
            let a = seq(m, k, 1.0);
            let b = seq(k, n, 2.0);
            let c = matmul(&a, &b);
            let r = matmul_reference(&a, &b);
            assert!(c.max_abs_diff(&r) < 1e-3, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn tn_matches_transpose_then_multiply() {
        let a = seq(7, 5, 1.0); // k=7, m=5
        let b = seq(7, 6, 1.5);
        let c = matmul_tn(&a, &b);
        let r = matmul_reference(&a.transpose(), &b);
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn nt_matches_transpose_then_multiply() {
        let a = seq(5, 7, 1.0);
        let b = seq(6, 7, 1.5); // Bᵀ is 7x6
        let c = matmul_nt(&a, &b);
        let r = matmul_reference(&a, &b.transpose());
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn alpha_beta_accumulation() {
        let a = seq(3, 3, 1.0);
        let b = DMatrix::eye(3);
        let mut c = DMatrix::filled(3, 3, 1.0);
        gemm_nn(2.0, &a, &b, 0.5, &mut c);
        // c = 2a + 0.5
        for i in 0..3 {
            for j in 0..3 {
                assert!((c.get(i, j) - (2.0 * a.get(i, j) + 0.5)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        // beta = 0 must overwrite even NaN garbage in C (BLAS semantics).
        let a = DMatrix::eye(2);
        let b = DMatrix::eye(2);
        let mut c = DMatrix::filled(2, 2, f32::NAN);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
        assert!(c.all_finite());
        assert_eq!(c, DMatrix::eye(2));
    }

    #[test]
    fn identity_multiplication() {
        let a = seq(4, 4, 3.0);
        let c = matmul(&a, &DMatrix::eye(4));
        assert!(c.max_abs_diff(&a) < 1e-6);
        let c = matmul(&DMatrix::eye(4), &a);
        assert!(c.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn empty_dimensions() {
        let a = DMatrix::zeros(0, 3);
        let b = DMatrix::zeros(3, 2);
        assert_eq!(matmul(&a, &b).shape(), (0, 2));
        let a = DMatrix::zeros(2, 0);
        let b = DMatrix::zeros(0, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c, DMatrix::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dim_mismatch_panics() {
        matmul(&DMatrix::zeros(2, 3), &DMatrix::zeros(4, 2));
    }

    #[test]
    fn large_parallel_consistency() {
        // A k-blocked parallel result must match the reference on a size
        // that spans multiple k-panels and rayon tasks.
        let a = seq(100, 300, 0.7);
        let b = seq(300, 50, 1.3);
        let c = matmul(&a, &b);
        let r = matmul_reference(&a, &b);
        assert!(c.max_abs_diff(&r) < 5e-3);
    }
}
