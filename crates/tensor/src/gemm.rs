//! Packed, register-blocked parallel GEMM — the workspace's `cblas_sgemm`
//! replacement and the single hottest kernel in GCN training.
//!
//! Three layout-specialised entry points cover every multiply in training:
//!
//! * [`matmul`] / [`gemm_nn`] (`C = A·B`) — forward weight application `H·W`;
//! * [`matmul_tn`] / [`gemm_tn`] (`C = Aᵀ·B`) — weight gradients `Hᵀ·dY`;
//! * [`matmul_nt`] / [`gemm_nt`] (`C = A·Bᵀ`) — input gradients `dY·Wᵀ`.
//!
//! The `*_v` variants take strided [`MatRef`]/[`MatMut`] views, so callers
//! can multiply into (or from) column sub-ranges of larger matrices — the
//! neighbor‖self halves of a concatenated GCN activation — without copies.
//!
//! # Kernel design
//!
//! This is a BLIS-style packed kernel:
//!
//! ```text
//! for jc in 0..n step NC:                    (column strip of C)
//!   for pc in 0..k step KC:                  (reduction panel)
//!     pack B[pc.., jc..]  →  b_pack          (NR-wide column panels)
//!     par for ic in 0..m step MC:            (row block — rayon task)
//!       pack α·A[ic.., pc..]  →  a_pack      (MR-tall row panels)
//!       for jr, ir tiles:  microkernel MR×NR over KC
//! ```
//!
//! * **Packing** copies each operand panel once into contiguous,
//!   panel-interleaved, 64-byte-aligned scratch (from [`crate::scratch`],
//!   reused across calls), so the microkernel's loads are unit-stride
//!   vector loads regardless of the operand layout — this is what makes
//!   the `tn`/`nt` transpose variants and strided views run at `nn` speed,
//!   and it bounds cache/TLB traffic to one streaming pass per panel. `α`
//!   is folded into the A-pack. The A-panel interleave ([`MR`] = 8 rows)
//!   is **tier-invariant**; the B-panel width `NR` belongs to the selected
//!   microkernel.
//! * **The microkernel** is an explicit SIMD register-tile kernel selected
//!   at runtime from the tiers in [`crate::ukernel`]: hand-written
//!   AVX-512F (`8×48`, `_mm512_fmadd_ps`) and AVX2+FMA (`8×16`,
//!   `_mm256_fmadd_ps`) kernels, with the portable autovectorised
//!   virtual-vector kernel (`8×32`) as the fallback. Dispatch is resolved
//!   once per process (`is_x86_feature_detected!`, overridable with the
//!   `GSGCN_KERNEL` env var — `scalar`/`avx2`/`avx512`/`auto`) into a
//!   cached kernel table; [`with_tier`] forces a tier per thread for
//!   tests/benches. All tiers compute each C element as the same FMA
//!   chain, so tier choice never changes results. There is **no**
//!   zero-skip branch: the seed kernel's `if aik == 0.0 { continue; }`
//!   stalled the pipeline on every dense activation element to optimise a
//!   case (exact zeros) that occurs only for ReLU-sparse inputs, and even
//!   then saves nothing once the loop is memory-bound.
//! * **Parallelism** is over `MC`-row blocks of `C` on the current rayon
//!   pool. Tasks own disjoint C rows and the block structure is a function
//!   of the shape alone, so results are bit-identical for any thread
//!   count. The dispatched kernel is resolved on the calling thread and
//!   carried into the tasks, so a per-thread tier override composes with
//!   thread pools.
//! * Accumulation order per C element is fixed (pc-major, then kk), so the
//!   kernel is deterministic; tests pin it against [`matmul_reference`].
//!
//! Edge tiles run the same microkernel against zero-padded panels and clip
//! on the C store, so odd shapes take the fast path too.
//!
//! # Fusion: producer-packed A panels
//!
//! A-panel packing is driven by the [`PackSource`] trait rather than a
//! matrix view: the driver asks the source for each `MC×KC` panel, and the
//! dense entry points above are just the [`DensePack`] implementation. A
//! producer implementation can instead *compute* its rows directly into
//! the thread-local pack scratch — `gsgcn-prop` uses this to fuse the
//! sparse aggregation `Â·H` of a GCN layer with the weight GEMM
//! ([`gemm_source_nn_v`] / [`gemm_source_nt_v`]), so the aggregated matrix
//! never materialises in DRAM.

use crate::matrix::DMatrix;
use crate::scratch;
use crate::ukernel::{self, Kernel, NR_MAX};
use crate::view::{MatMut, MatRef};
use rayon::prelude::*;

// Microkernel tiers and their dispatch live in `crate::ukernel`; the tier
// inspection/override API is re-exported here because this is the module
// callers already import for everything GEMM.
pub use crate::ukernel::{
    available_tiers, best_available_tier, selected_tier, with_tier, Tier, ALL_TIERS,
};

/// Microkernel tile height (rows of C per register tile), identical for
/// every tier. Public because [`PackSource`] implementors must produce
/// panels in the MR-interleaved pack layout (see [`PackSource::pack_a`]).
pub use crate::ukernel::MR;

/// Reduction-dimension block: one packed A panel column-block (`MC×KC`)
/// plus the B panel rows stay L2-resident.
const KC: usize = 256;
/// Rows of C per parallel task / packed A block.
const MC: usize = 64;

// ---------------------------------------------------------------------------
// Allocating convenience wrappers
// ---------------------------------------------------------------------------

/// `C = A·B`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let mut c = DMatrix::zeros(a.rows(), b.cols());
    gemm_nn(1.0, a, b, 0.0, &mut c);
    c
}

/// `C = Aᵀ·B` (A is `k × m`, B is `k × n`, C is `m × n`).
pub fn matmul_tn(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let mut c = DMatrix::zeros(a.cols(), b.cols());
    gemm_tn(1.0, a, b, 0.0, &mut c);
    c
}

/// `C = A·Bᵀ` (A is `m × k`, B is `n × k`, C is `m × n`).
pub fn matmul_nt(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let mut c = DMatrix::zeros(a.rows(), b.rows());
    gemm_nt(1.0, a, b, 0.0, &mut c);
    c
}

/// `C = α·A·B + β·C`.
pub fn gemm_nn(alpha: f32, a: &DMatrix, b: &DMatrix, beta: f32, c: &mut DMatrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: A is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    gemm_nn_v(alpha, a.view(), b.view(), beta, c.view_mut());
}

/// `C = α·Aᵀ·B + β·C` where A is `k × m` (so `Aᵀ` is `m × k`), B is `k × n`.
pub fn gemm_tn(alpha: f32, a: &DMatrix, b: &DMatrix, beta: f32, c: &mut DMatrix) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: Aᵀ is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    gemm_tn_v(alpha, a.view(), b.view(), beta, c.view_mut());
}

/// `C = α·A·Bᵀ + β·C` where A is `m × k`, B is `n × k`.
pub fn gemm_nt(alpha: f32, a: &DMatrix, b: &DMatrix, beta: f32, c: &mut DMatrix) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: A is {m}x{k}, Bᵀ is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    gemm_nt_v(alpha, a.view(), b.view(), beta, c.view_mut());
}

// ---------------------------------------------------------------------------
// View-based entry points
// ---------------------------------------------------------------------------

/// `C = α·A·B + β·C` over strided views.
pub fn gemm_nn_v(alpha: f32, a: MatRef<'_>, b: MatRef<'_>, beta: f32, c: MatMut<'_>) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: A is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    driver(alpha, &DensePack::new(a), b, false, beta, c);
}

/// `C = α·Aᵀ·B + β·C` over strided views (A stored `k × m`).
pub fn gemm_tn_v(alpha: f32, a: MatRef<'_>, b: MatRef<'_>, beta: f32, c: MatMut<'_>) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: Aᵀ is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    driver(alpha, &DensePack::transposed(a), b, false, beta, c);
}

/// `C = α·A·Bᵀ + β·C` over strided views (B stored `n × k`).
pub fn gemm_nt_v(alpha: f32, a: MatRef<'_>, b: MatRef<'_>, beta: f32, c: MatMut<'_>) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: A is {m}x{k}, Bᵀ is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    driver(alpha, &DensePack::new(a), b, true, beta, c);
}

// ---------------------------------------------------------------------------
// A-panel sources
// ---------------------------------------------------------------------------

/// A source of packed A panels for the GEMM driver.
///
/// The driver never reads the A operand directly — it asks the source to
/// pack `α·A[ic..ic+mc, pc..pc+kc]` into the microkernel's panel layout,
/// one `MC×KC` block at a time, inside each parallel row-block task. This
/// is the hook that makes **operator fusion** possible: a producer can
/// *compute* its rows (e.g. the sparse aggregation `Σ_{u∈N(v)} H[u]` of a
/// GCN layer, see `gsgcn-prop`) straight into the thread-local pack
/// scratch, so the logical A matrix only ever exists as an L2-resident
/// panel and never round-trips through DRAM. The dense paths ([`matmul`]
/// and friends) go through the same trait via [`DensePack`].
///
/// `pack_a` may be called for the same `(ic, pc)` block more than once
/// (once per `NC`-column strip of C), from different threads across calls
/// but never concurrently for overlapping row ranges within one strip.
pub trait PackSource: Sync {
    /// Logical shape `(m, k)` of the A operand.
    fn shape(&self) -> (usize, usize);

    /// Pack `α·A[ic..ic+mc, pc..pc+kc]` into MR-tall row panels:
    /// `out[p·kc·MR + kk·MR + r] = α·A[ic + p·MR + r, pc + kk]`,
    /// zero-padding rows past `mc`. `out.len()` is
    /// `mc.div_ceil(MR) · kc · MR`.
    fn pack_a(&self, alpha: f32, ic: usize, mc: usize, pc: usize, kc: usize, out: &mut [f32]);
}

/// The dense [`PackSource`]: an A operand stored as a (possibly strided,
/// possibly transposed) matrix view.
pub struct DensePack<'a> {
    a: MatRef<'a>,
    trans: bool,
}

impl<'a> DensePack<'a> {
    /// Source reading `A` in its logical orientation.
    pub fn new(a: MatRef<'a>) -> Self {
        DensePack { a, trans: false }
    }

    /// Source reading `Aᵀ` (the view stores `k × m`).
    pub fn transposed(a: MatRef<'a>) -> Self {
        DensePack { a, trans: true }
    }
}

impl PackSource for DensePack<'_> {
    fn shape(&self) -> (usize, usize) {
        if self.trans {
            (self.a.cols(), self.a.rows())
        } else {
            self.a.shape()
        }
    }

    fn pack_a(&self, alpha: f32, ic: usize, mc: usize, pc: usize, kc: usize, out: &mut [f32]) {
        pack_a_dense(self.a, self.trans, alpha, ic, mc, pc, kc, out);
    }
}

// ---------------------------------------------------------------------------
// Fused entry points
// ---------------------------------------------------------------------------

/// `C = α·S·B + β·C`, with the A operand produced by a [`PackSource`].
pub fn gemm_source_nn_v<S: PackSource + ?Sized>(
    alpha: f32,
    src: &S,
    b: MatRef<'_>,
    beta: f32,
    c: MatMut<'_>,
) {
    let (m, k) = src.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: source is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    driver(alpha, src, b, false, beta, c);
}

/// `C = α·S·Bᵀ + β·C` (B stored `n × k`), A produced by a [`PackSource`].
pub fn gemm_source_nt_v<S: PackSource + ?Sized>(
    alpha: f32,
    src: &S,
    b: MatRef<'_>,
    beta: f32,
    c: MatMut<'_>,
) {
    let (m, k) = src.shape();
    let (n, kb) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: source is {m}x{k}, Bᵀ is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    driver(alpha, src, b, true, beta, c);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Pointer wrapper for handing disjoint C row blocks to parallel tasks.
#[derive(Clone, Copy)]
struct CPtr {
    ptr: *mut f32,
    row_stride: usize,
}

// SAFETY: tasks write disjoint row ranges of C (each `ic` block is owned
// by exactly one task) and never read rows they do not own.
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

fn driver<S: PackSource + ?Sized>(
    alpha: f32,
    a: &S,
    b: MatRef<'_>,
    b_trans: bool,
    beta: f32,
    mut c: MatMut<'_>,
) {
    // Logical dimensions: C is m×n, reduction length k.
    let (m, n) = c.shape();
    let k = a.shape().1;

    if m == 0 || n == 0 {
        return;
    }
    scale_c(&mut c, beta);
    if k == 0 || alpha == 0.0 {
        return;
    }

    let c_base = CPtr {
        ptr: c.as_mut_ptr(),
        row_stride: c.row_stride(),
    };

    // Resolve the microkernel once, on the calling thread (honouring any
    // `with_tier` override there), and carry it into the parallel tasks.
    let kern = ukernel::current_kernel();
    let nr = kern.nr;

    let ic_blocks = m.div_ceil(MC);
    for jc in (0..n).step_by(kern.nc) {
        let nc = kern.nc.min(n - jc);
        let b_panels = nc.div_ceil(nr);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            scratch::with_buf(b_panels * kc * nr, |b_pack| {
                pack_b(b, b_trans, pc, kc, jc, nc, nr, b_pack);
                let b_pack = &*b_pack;
                (0..ic_blocks).into_par_iter().for_each(|blk| {
                    let ic = blk * MC;
                    let mc = MC.min(m - ic);
                    let a_panels = mc.div_ceil(MR);
                    scratch::with_buf(a_panels * kc * MR, |a_pack| {
                        a.pack_a(alpha, ic, mc, pc, kc, a_pack);
                        multiply_block(kern, a_pack, b_pack, c_base, ic, mc, jc, nc, kc);
                    });
                });
            });
        }
    }
}

/// Stack tile buffer for the microkernel output, 64-byte aligned so the
/// widest tier's stores stay within cache lines.
#[repr(align(64))]
struct AccTile([f32; MR * NR_MAX]);

/// `C[ic..ic+mc, jc..jc+nc] += packed_A · packed_B` for one row block.
#[allow(clippy::too_many_arguments)]
fn multiply_block(
    kern: &Kernel,
    a_pack: &[f32],
    b_pack: &[f32],
    c_base: CPtr,
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    kc: usize,
) {
    let nr = kern.nr;
    // Tile buffer the microkernel overwrites per call (row-major MR×nr).
    let mut acc = AccTile([0.0f32; MR * NR_MAX]);
    let acc = &mut acc.0[..MR * nr];
    for (jp, b_panel) in b_pack.chunks_exact(kc * nr).enumerate() {
        let jr = jp * nr;
        let tile_cols = nr.min(nc - jr);
        for (ip, a_panel) in a_pack.chunks_exact(kc * MR).enumerate() {
            let ir = ip * MR;
            let tile_rows = MR.min(mc - ir);
            kern.run(kc, a_panel, b_panel, acc);
            // (acc now holds the full tile product for this pc panel.)
            // Store: C[ic+ir .., jc+jr ..] += acc (clipped to the edge).
            for (r, acc_row) in acc.chunks_exact(nr).enumerate().take(tile_rows) {
                // SAFETY: this task owns rows [ic, ic+mc) of C, and
                // jc+jr+tile_cols ≤ n by construction.
                let c_row: &mut [f32] = unsafe {
                    std::slice::from_raw_parts_mut(
                        c_base.ptr.add((ic + ir + r) * c_base.row_stride + jc + jr),
                        tile_cols,
                    )
                };
                for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
                    *cv += *av;
                }
            }
        }
    }
}

/// Pack `α·A[ic..ic+mc, pc..pc+kc]` (logical orientation) into MR-tall row
/// panels: `out[p*kc*MR + kk*MR + r] = α·A[ic+p·MR+r, pc+kk]`, zero-padding
/// rows past `mc`.
#[allow(clippy::too_many_arguments)]
fn pack_a_dense(
    a: MatRef<'_>,
    a_trans: bool,
    alpha: f32,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    out: &mut [f32],
) {
    let panels = mc.div_ceil(MR);
    debug_assert_eq!(out.len(), panels * kc * MR);
    for (p, panel) in out.chunks_exact_mut(kc * MR).enumerate() {
        let r0 = p * MR;
        let rows_here = MR.min(mc - r0);
        if a_trans {
            // A stored k×m: for fixed kk the MR logical rows are contiguous.
            for (kk, dst) in panel.chunks_exact_mut(MR).enumerate() {
                let src = &a.row(pc + kk)[ic + r0..ic + r0 + rows_here];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = alpha * s;
                }
                dst[rows_here..].fill(0.0);
            }
        } else {
            // A stored m×k: walk each logical row once (contiguous in kk).
            for r in 0..rows_here {
                let src = &a.row(ic + r0 + r)[pc..pc + kc];
                for (kk, &s) in src.iter().enumerate() {
                    panel[kk * MR + r] = alpha * s;
                }
            }
            if rows_here < MR {
                for kk in 0..kc {
                    panel[kk * MR + rows_here..(kk + 1) * MR].fill(0.0);
                }
            }
        }
    }
}

/// Pack `B[pc..pc+kc, jc..jc+nc]` (logical orientation) into `nr`-wide
/// column panels: `out[p*kc*nr + kk*nr + j] = B[pc+kk, jc+p·nr+j]`,
/// zero-padding columns past `nc`. `nr` is the selected microkernel's
/// tile width — the one pack-layout parameter that varies per tier.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: MatRef<'_>,
    b_trans: bool,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
    out: &mut [f32],
) {
    let panels = nc.div_ceil(nr);
    debug_assert_eq!(out.len(), panels * kc * nr);
    for (p, panel) in out.chunks_exact_mut(kc * nr).enumerate() {
        let c0 = p * nr;
        let cols_here = nr.min(nc - c0);
        if b_trans {
            // B stored n×k: each logical column is a contiguous stored row.
            for j in 0..cols_here {
                let src = &b.row(jc + c0 + j)[pc..pc + kc];
                for (kk, &s) in src.iter().enumerate() {
                    panel[kk * nr + j] = s;
                }
            }
            if cols_here < nr {
                for kk in 0..kc {
                    panel[kk * nr + cols_here..(kk + 1) * nr].fill(0.0);
                }
            }
        } else {
            // B stored k×n: one contiguous copy per kk.
            for (kk, dst) in panel.chunks_exact_mut(nr).enumerate() {
                let src = &b.row(pc + kk)[jc + c0..jc + c0 + cols_here];
                dst[..cols_here].copy_from_slice(src);
                dst[cols_here..].fill(0.0);
            }
        }
    }
}

/// `C = β·C`, with BLAS semantics: `β = 0` overwrites even NaN garbage.
fn scale_c(c: &mut MatMut<'_>, beta: f32) {
    if beta == 1.0 {
        return;
    }
    for i in 0..c.rows() {
        let row = c.row_mut(i);
        if beta == 0.0 {
            row.fill(0.0);
        } else {
            for x in row {
                *x *= beta;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reference and baseline kernels
// ---------------------------------------------------------------------------

/// Naive triple-loop reference, used by tests and benches as ground truth.
pub fn matmul_reference(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb);
    let mut c = DMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64; // f64 accumulation for a tighter reference
            for l in 0..k {
                acc += a.get(i, l) as f64 * b.get(l, j) as f64;
            }
            c.set(i, j, acc as f32);
        }
    }
    c
}

/// The seed's unpacked k-blocked kernel (including its inner-loop
/// `aik == 0.0` skip), retained verbatim as the benchmark baseline the
/// packed kernel is measured against. Not used by training.
pub fn matmul_unpacked(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must match");
    let mut c = DMatrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let a_data = a.data();
    let b_data = b.data();
    // Minimum per-task work matching the seed's PAR_GRAIN.
    let rows_per_task = ((1usize << 14) / (n * k).max(1)).clamp(1, m);
    c.data_mut()
        .par_chunks_mut(rows_per_task * n)
        .enumerate()
        .for_each(|(t, c_block)| {
            let i0 = t * rows_per_task;
            let rows_here = c_block.len() / n;
            let mut k0 = 0;
            while k0 < k {
                let k1 = (k0 + KC).min(k);
                for li in 0..rows_here {
                    let a_row = &a_data[(i0 + li) * k..(i0 + li + 1) * k];
                    let c_row = &mut c_block[li * n..(li + 1) * n];
                    for kk in k0..k1 {
                        let aik = a_row[kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b_data[kk * n..(kk + 1) * n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv = bv.mul_add(aik, *cv);
                        }
                    }
                }
                k0 = k1;
            }
        });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize, scale: f32) -> DMatrix {
        // Bounded values keep f32 accumulation error well below tolerances.
        DMatrix::from_fn(rows, cols, |i, j| {
            (((i * cols + j) % 17) as f32 * 0.05 - 0.4) * scale
        })
    }

    #[test]
    fn matmul_matches_reference() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 9, 33), (64, 128, 32)] {
            let a = seq(m, k, 1.0);
            let b = seq(k, n, 2.0);
            let c = matmul(&a, &b);
            let r = matmul_reference(&a, &b);
            assert!(c.max_abs_diff(&r) < 1e-3, "m={m} k={k} n={n}");
        }
    }

    /// Shapes straddling every blocking boundary: MR, every tier's NR
    /// (16 / 32 / 48), KC and MC.
    #[test]
    fn matmul_matches_reference_at_block_edges() {
        let dims = [
            1,
            MR - 1,
            MR,
            MR + 1,
            15,
            17,
            31,
            33,
            47,
            49,
            MC - 1,
            MC + 1,
        ];
        for &m in &dims {
            for &n in &dims {
                for &k in &[1usize, 7, KC - 1, KC + 1] {
                    let a = seq(m, k, 0.7);
                    let b = seq(k, n, 1.1);
                    let c = matmul(&a, &b);
                    let r = matmul_reference(&a, &b);
                    assert!(c.max_abs_diff(&r) < 5e-3, "m={m} k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn tn_matches_transpose_then_multiply() {
        let a = seq(7, 5, 1.0); // k=7, m=5
        let b = seq(7, 6, 1.5);
        let c = matmul_tn(&a, &b);
        let r = matmul_reference(&a.transpose(), &b);
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn nt_matches_transpose_then_multiply() {
        let a = seq(5, 7, 1.0);
        let b = seq(6, 7, 1.5); // Bᵀ is 7x6
        let c = matmul_nt(&a, &b);
        let r = matmul_reference(&a, &b.transpose());
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn alpha_beta_accumulation() {
        let a = seq(3, 3, 1.0);
        let b = DMatrix::eye(3);
        let mut c = DMatrix::filled(3, 3, 1.0);
        gemm_nn(2.0, &a, &b, 0.5, &mut c);
        // c = 2a + 0.5
        for i in 0..3 {
            for j in 0..3 {
                assert!((c.get(i, j) - (2.0 * a.get(i, j) + 0.5)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        // beta = 0 must overwrite even NaN garbage in C (BLAS semantics).
        let a = DMatrix::eye(2);
        let b = DMatrix::eye(2);
        let mut c = DMatrix::filled(2, 2, f32::NAN);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
        assert!(c.all_finite());
        assert_eq!(c, DMatrix::eye(2));
    }

    #[test]
    fn identity_multiplication() {
        let a = seq(4, 4, 3.0);
        let c = matmul(&a, &DMatrix::eye(4));
        assert!(c.max_abs_diff(&a) < 1e-6);
        let c = matmul(&DMatrix::eye(4), &a);
        assert!(c.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn empty_dimensions() {
        let a = DMatrix::zeros(0, 3);
        let b = DMatrix::zeros(3, 2);
        assert_eq!(matmul(&a, &b).shape(), (0, 2));
        let a = DMatrix::zeros(2, 0);
        let b = DMatrix::zeros(0, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c, DMatrix::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dim_mismatch_panics() {
        matmul(&DMatrix::zeros(2, 3), &DMatrix::zeros(4, 2));
    }

    #[test]
    fn large_parallel_consistency() {
        // A result spanning multiple KC panels, MC blocks and rayon tasks
        // must match the reference.
        let a = seq(100, 300, 0.7);
        let b = seq(300, 50, 1.3);
        let c = matmul(&a, &b);
        let r = matmul_reference(&a, &b);
        assert!(c.max_abs_diff(&r) < 5e-3);
    }

    #[test]
    fn packed_matches_unpacked_seed_kernel() {
        let a = seq(65, 70, 0.9);
        let b = seq(70, 40, 1.2);
        let packed = matmul(&a, &b);
        let unpacked = matmul_unpacked(&a, &b);
        assert!(packed.max_abs_diff(&unpacked) < 1e-4);
    }

    #[test]
    fn every_tier_matches_reference_end_to_end() {
        // Spans several KC panels and MC blocks so each tier's full
        // driver path (packing, strips, edge tiles) is exercised.
        let a = seq(65, 300, 0.8);
        let b = seq(300, 70, 1.2);
        let r = matmul_reference(&a, &b);
        for tier in available_tiers() {
            let c = with_tier(tier, || matmul(&a, &b));
            assert!(c.max_abs_diff(&r) < 5e-3, "tier {}", tier.name());
        }
    }

    #[test]
    fn tiers_are_bit_identical() {
        // Every tier runs the same FMA chain per C element (see the
        // ukernel module docs), so tier choice must not change results
        // at all — not merely within tolerance.
        let a = seq(70, 260, 0.9);
        let b = seq(260, 50, 1.1);
        let reference = with_tier(Tier::Scalar, || matmul(&a, &b));
        for tier in available_tiers() {
            let c = with_tier(tier, || matmul(&a, &b));
            assert_eq!(c, reference, "tier {}", tier.name());
        }
    }

    #[test]
    fn strided_views_multiply_into_column_halves() {
        // C's two column halves written by two separate gemms must equal
        // the concatenation of the dense products.
        let h = seq(10, 6, 1.0);
        let w1 = seq(6, 4, 0.8);
        let w2 = seq(6, 4, 1.3);
        let mut c = DMatrix::filled(10, 8, f32::NAN);
        gemm_nn_v(1.0, h.view(), w1.view(), 0.0, c.view_cols_mut(0, 4));
        gemm_nn_v(1.0, h.view(), w2.view(), 0.0, c.view_cols_mut(4, 8));
        let left = matmul(&h, &w1);
        let right = matmul(&h, &w2);
        for i in 0..10 {
            for j in 0..4 {
                assert!((c.get(i, j) - left.get(i, j)).abs() < 1e-5);
                assert!((c.get(i, j + 4) - right.get(i, j)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn strided_view_operands_read_column_ranges() {
        // Multiply from a column slice of a wider matrix without copying.
        let wide = seq(9, 10, 1.0);
        let b = seq(4, 5, 1.1);
        let mut c = DMatrix::zeros(9, 5);
        gemm_nn_v(1.0, wide.view_cols(3, 7), b.view(), 0.0, c.view_mut());
        // Reference: materialise the slice.
        let sliced = DMatrix::from_fn(9, 4, |i, j| wide.get(i, j + 3));
        let r = matmul_reference(&sliced, &b);
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    /// A [`PackSource`] that computes `A[i,j] = f(i, j)` on the fly —
    /// exercises the producer-packed path against materialised GEMM.
    struct FnSource {
        m: usize,
        k: usize,
    }

    impl FnSource {
        fn at(&self, i: usize, j: usize) -> f32 {
            ((i * 13 + j * 5) % 23) as f32 * 0.1 - 1.0
        }

        fn materialise(&self) -> DMatrix {
            DMatrix::from_fn(self.m, self.k, |i, j| self.at(i, j))
        }
    }

    impl PackSource for FnSource {
        fn shape(&self) -> (usize, usize) {
            (self.m, self.k)
        }

        fn pack_a(&self, alpha: f32, ic: usize, mc: usize, pc: usize, kc: usize, out: &mut [f32]) {
            for (p, panel) in out.chunks_exact_mut(kc * MR).enumerate() {
                let r0 = p * MR;
                let rows_here = MR.min(mc - r0);
                for kk in 0..kc {
                    for r in 0..MR {
                        panel[kk * MR + r] = if r < rows_here {
                            alpha * self.at(ic + r0 + r, pc + kk)
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }

    #[test]
    fn source_nn_matches_materialised() {
        // Shapes straddling MR/MC/KC boundaries so producer packs hit
        // edge panels too.
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (9, 7, 33), (65, 257, 40)] {
            let src = FnSource { m, k };
            let b = seq(k, n, 1.1);
            let mut c = DMatrix::filled(m, n, f32::NAN);
            gemm_source_nn_v(1.0, &src, b.view(), 0.0, c.view_mut());
            let r = matmul(&src.materialise(), &b);
            assert!(c.max_abs_diff(&r) < 1e-4, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn source_nt_matches_materialised_and_accumulates() {
        let (m, k, n) = (20usize, 9usize, 12usize);
        let src = FnSource { m, k };
        let b = seq(n, k, 0.9); // stored n×k for nt
        let mut c = DMatrix::filled(m, n, 0.5);
        gemm_source_nt_v(2.0, &src, b.view(), 1.0, c.view_mut());
        let mut r = DMatrix::filled(m, n, 0.5);
        gemm_nt(2.0, &src.materialise(), &b, 1.0, &mut r);
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn strided_tn_nt_match_dense() {
        let a = seq(12, 9, 1.0);
        let d = seq(12, 7, 0.9);
        // dW = Aᵀ·D via views == dense matmul_tn.
        let mut c = DMatrix::zeros(9, 7);
        gemm_tn_v(1.0, a.view(), d.view(), 0.0, c.view_mut());
        assert!(c.max_abs_diff(&matmul_tn(&a, &d)) < 1e-4);
        // dH = D·Wᵀ with W (stored n×k) read from a column range.
        let w_wide = seq(9, 12, 1.0); // take cols 2..7 as a 9×5 "W"
        let w = DMatrix::from_fn(9, 5, |i, j| w_wide.get(i, j + 2));
        let dd = seq(12, 5, 1.0);
        let mut c2 = DMatrix::zeros(12, 9);
        gemm_nt_v(1.0, dd.view(), w_wide.view_cols(2, 7), 0.0, c2.view_mut());
        assert!(c2.max_abs_diff(&matmul_nt(&dd, &w)) < 1e-4);
    }
}
