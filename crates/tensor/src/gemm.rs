//! Packed, register-blocked parallel GEMM — the workspace's `cblas_sgemm`
//! replacement and the single hottest kernel in GCN training.
//!
//! Three layout-specialised entry points cover every multiply in training:
//!
//! * [`matmul`] / [`gemm_nn`] (`C = A·B`) — forward weight application `H·W`;
//! * [`matmul_tn`] / [`gemm_tn`] (`C = Aᵀ·B`) — weight gradients `Hᵀ·dY`;
//! * [`matmul_nt`] / [`gemm_nt`] (`C = A·Bᵀ`) — input gradients `dY·Wᵀ`.
//!
//! The `*_v` variants take strided [`MatRef`]/[`MatMut`] views, so callers
//! can multiply into (or from) column sub-ranges of larger matrices — the
//! neighbor‖self halves of a concatenated GCN activation — without copies.
//!
//! # Kernel design
//!
//! This is a BLIS-style packed kernel:
//!
//! ```text
//! for jc in 0..n step NC:                    (column strip of C)
//!   for pc in 0..k step KC:                  (reduction panel)
//!     pack B[pc.., jc..]  →  b_pack          (NR-wide column panels)
//!     par for ic in 0..m step MC:            (row block — rayon task)
//!       pack α·A[ic.., pc..]  →  a_pack      (MR-tall row panels)
//!       for jr, ir tiles:  microkernel MR×NR over KC
//! ```
//!
//! * **Packing** copies each operand panel once into contiguous,
//!   panel-interleaved, 64-byte-aligned scratch (from [`crate::scratch`],
//!   reused across calls), so the microkernel's loads are unit-stride
//!   vector loads regardless of the operand layout — this is what makes
//!   the `tn`/`nt` transpose variants and strided views run at `nn` speed,
//!   and it bounds cache/TLB traffic to one streaming pass per panel. `α`
//!   is folded into the A-pack. The A-panel interleave ([`MR`] = 8 rows)
//!   is **tier-invariant**; the B-panel width `NR` belongs to the selected
//!   microkernel.
//! * **The microkernel** is an explicit SIMD register-tile kernel selected
//!   at runtime from the tiers in [`crate::ukernel`]: hand-written
//!   AVX-512F (`8×48`, `_mm512_fmadd_ps`) and AVX2+FMA (`8×16`,
//!   `_mm256_fmadd_ps`) kernels, with the portable autovectorised
//!   virtual-vector kernel (`8×32`) as the fallback. Dispatch is resolved
//!   once per process (`is_x86_feature_detected!`, overridable with the
//!   `GSGCN_KERNEL` env var — `scalar`/`avx2`/`avx512`/`auto`) into a
//!   cached kernel table; [`with_tier`] forces a tier per thread for
//!   tests/benches. All tiers compute each C element as the same FMA
//!   chain, so tier choice never changes results. There is **no**
//!   zero-skip branch: the seed kernel's `if aik == 0.0 { continue; }`
//!   stalled the pipeline on every dense activation element to optimise a
//!   case (exact zeros) that occurs only for ReLU-sparse inputs, and even
//!   then saves nothing once the loop is memory-bound.
//! * **Parallelism** is over `MC`-row blocks of `C` on the current rayon
//!   pool. Tasks own disjoint C rows and the block structure is a function
//!   of the shape alone, so results are bit-identical for any thread
//!   count. The dispatched kernel is resolved on the calling thread and
//!   carried into the tasks, so a per-thread tier override composes with
//!   thread pools.
//! * Accumulation order per C element is fixed (pc-major, then kk), so the
//!   kernel is deterministic; tests pin it against [`matmul_reference`].
//!
//! Edge tiles run the same microkernel against zero-padded panels and clip
//! on the C store, so odd shapes take the fast path too.
//!
//! # Fusion: producer-packed A panels
//!
//! A-panel packing is driven by the [`PackSource`] trait rather than a
//! matrix view: the driver asks the source for each `MC×KC` panel, and the
//! dense entry points above are just the [`DensePack`] implementation. A
//! producer implementation can instead *compute* its rows directly into
//! the thread-local pack scratch — `gsgcn-prop` uses this to fuse the
//! sparse aggregation `Â·H` of a GCN layer with the weight GEMM
//! ([`gemm_source_nn_v`] / [`gemm_source_nt_v`]), so the aggregated matrix
//! never materialises in DRAM.
//!
//! # Precision: bf16 panels, f32 accumulate
//!
//! The fused layer is memory-bandwidth-bound at the GCN shapes, so the
//! driver has a second panel pipeline where both packed operands hold
//! **bf16** (u16) elements: [`gemm_source_nn_bf16_v`] packs B by rounding
//! once ([`Bf16::from_f32`], round-to-nearest-even) and asks a
//! [`PackSourceBf16`] for bf16 A panels, and the microkernel widens both
//! in registers (a 16-bit shift) while accumulating in f32 — see
//! [`crate::ukernel`]'s precision section. Panel indices and the `MR`
//! interleave are identical to the f32 path, only the element width
//! halves, which halves the panel bytes re-streamed per block (packed B
//! is re-read for every `MC`-row block — ~1 MiB/strip in f32 — and
//! packed A is re-swept per `NR` tile column). Conversions happen **at
//! pack time inside the L2-resident panel**, never as a separate DRAM
//! pass: a bf16 producer (quantised activations, bf16 shard rows)
//! aggregates/copies straight into the panel, and any f32
//! [`PackSource`] rides along via [`QuantizePack`] with exactly one
//! rounding per element. α is folded into the A-pack *before* that
//! rounding, so the stored panel carries a single quantisation. The
//! result differs from the f32 path only by the per-element input
//! rounding (≤ 2⁻⁸ relative); equivalence tests are therefore
//! tolerance-banded via [`crate::precision::rel_tolerance`], while the
//! f32 path itself stays bit-identical. On CPUs with AVX512-BF16 the
//! avx512 row swaps its widen kernel for a native `vdpbf16ps`
//! dot-product over pair-interleaved panels (two k-steps per FMA-port
//! issue — see [`crate::ukernel`]'s native-dot section and
//! [`bf16_dot_native`]); its pairwise accumulation stays inside the same
//! tolerance bands. When the **AMX tile unit** is present
//! ([`crate::amx`]), the bf16 driver escalates past the vector kernels
//! altogether: A packs **row-major** (what `tileloadd` strides over,
//! via [`PackSourceBf16::pack_a_bf16_rowmajor`]) and B packs 16-column
//! VNNI panels, and each `tdpbf16ps` call covers a 32×32×32 brick —
//! measured ~5× over the f32 GEMM on the GCN layer shape, where the
//! widen kernels only break even. [`bf16_engine`] reports the path;
//! `GSGCN_AMX=0` falls back to the vector kernels.

use crate::bf16::{self, Bf16, Bf16MatRef};
use crate::matrix::DMatrix;
use crate::scratch;
use crate::ukernel::{self, Kernel, NR_MAX};
use crate::view::{MatMut, MatRef};
use rayon::prelude::*;

// Microkernel tiers and their dispatch live in `crate::ukernel`; the tier
// inspection/override API is re-exported here because this is the module
// callers already import for everything GEMM.
pub use crate::ukernel::{
    available_tiers, best_available_tier, bf16_dot_native, bf16_engine, selected_tier, with_tier,
    Tier, ALL_TIERS,
};

/// Microkernel tile height (rows of C per register tile), identical for
/// every tier. Public because [`PackSource`] implementors must produce
/// panels in the MR-interleaved pack layout (see [`PackSource::pack_a`]).
pub use crate::ukernel::MR;

/// Reduction-dimension block: one packed A panel column-block (`MC×KC`)
/// plus the B panel rows stay L2-resident.
const KC: usize = 256;
/// Rows of C per parallel task / packed A block.
const MC: usize = 64;

// ---------------------------------------------------------------------------
// Allocating convenience wrappers
// ---------------------------------------------------------------------------

/// `C = A·B`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let mut c = DMatrix::zeros(a.rows(), b.cols());
    gemm_nn(1.0, a, b, 0.0, &mut c);
    c
}

/// `C = Aᵀ·B` (A is `k × m`, B is `k × n`, C is `m × n`).
pub fn matmul_tn(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let mut c = DMatrix::zeros(a.cols(), b.cols());
    gemm_tn(1.0, a, b, 0.0, &mut c);
    c
}

/// `C = A·Bᵀ` (A is `m × k`, B is `n × k`, C is `m × n`).
pub fn matmul_nt(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let mut c = DMatrix::zeros(a.rows(), b.rows());
    gemm_nt(1.0, a, b, 0.0, &mut c);
    c
}

/// `C = α·A·B + β·C`.
pub fn gemm_nn(alpha: f32, a: &DMatrix, b: &DMatrix, beta: f32, c: &mut DMatrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: A is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    gemm_nn_v(alpha, a.view(), b.view(), beta, c.view_mut());
}

/// `C = α·Aᵀ·B + β·C` where A is `k × m` (so `Aᵀ` is `m × k`), B is `k × n`.
pub fn gemm_tn(alpha: f32, a: &DMatrix, b: &DMatrix, beta: f32, c: &mut DMatrix) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: Aᵀ is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    gemm_tn_v(alpha, a.view(), b.view(), beta, c.view_mut());
}

/// `C = α·A·Bᵀ + β·C` where A is `m × k`, B is `n × k`.
pub fn gemm_nt(alpha: f32, a: &DMatrix, b: &DMatrix, beta: f32, c: &mut DMatrix) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: A is {m}x{k}, Bᵀ is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    gemm_nt_v(alpha, a.view(), b.view(), beta, c.view_mut());
}

// ---------------------------------------------------------------------------
// View-based entry points
// ---------------------------------------------------------------------------

/// `C = α·A·B + β·C` over strided views.
pub fn gemm_nn_v(alpha: f32, a: MatRef<'_>, b: MatRef<'_>, beta: f32, c: MatMut<'_>) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: A is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    driver(alpha, &DensePack::new(a), b, false, beta, c);
}

/// `C = α·Aᵀ·B + β·C` over strided views (A stored `k × m`).
pub fn gemm_tn_v(alpha: f32, a: MatRef<'_>, b: MatRef<'_>, beta: f32, c: MatMut<'_>) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: Aᵀ is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    driver(alpha, &DensePack::transposed(a), b, false, beta, c);
}

/// `C = α·A·Bᵀ + β·C` over strided views (B stored `n × k`).
pub fn gemm_nt_v(alpha: f32, a: MatRef<'_>, b: MatRef<'_>, beta: f32, c: MatMut<'_>) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: A is {m}x{k}, Bᵀ is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    driver(alpha, &DensePack::new(a), b, true, beta, c);
}

// ---------------------------------------------------------------------------
// A-panel sources
// ---------------------------------------------------------------------------

/// A source of packed A panels for the GEMM driver.
///
/// The driver never reads the A operand directly — it asks the source to
/// pack `α·A[ic..ic+mc, pc..pc+kc]` into the microkernel's panel layout,
/// one `MC×KC` block at a time, inside each parallel row-block task. This
/// is the hook that makes **operator fusion** possible: a producer can
/// *compute* its rows (e.g. the sparse aggregation `Σ_{u∈N(v)} H[u]` of a
/// GCN layer, see `gsgcn-prop`) straight into the thread-local pack
/// scratch, so the logical A matrix only ever exists as an L2-resident
/// panel and never round-trips through DRAM. The dense paths ([`matmul`]
/// and friends) go through the same trait via [`DensePack`].
///
/// `pack_a` may be called for the same `(ic, pc)` block more than once
/// (once per `NC`-column strip of C), from different threads across calls
/// but never concurrently for overlapping row ranges within one strip.
pub trait PackSource: Sync {
    /// Logical shape `(m, k)` of the A operand.
    fn shape(&self) -> (usize, usize);

    /// Pack `α·A[ic..ic+mc, pc..pc+kc]` into MR-tall row panels:
    /// `out[p·kc·MR + kk·MR + r] = α·A[ic + p·MR + r, pc + kk]`,
    /// zero-padding rows past `mc`. `out.len()` is
    /// `mc.div_ceil(MR) · kc · MR`.
    fn pack_a(&self, alpha: f32, ic: usize, mc: usize, pc: usize, kc: usize, out: &mut [f32]);
}

/// The dense [`PackSource`]: an A operand stored as a (possibly strided,
/// possibly transposed) matrix view.
pub struct DensePack<'a> {
    a: MatRef<'a>,
    trans: bool,
}

impl<'a> DensePack<'a> {
    /// Source reading `A` in its logical orientation.
    pub fn new(a: MatRef<'a>) -> Self {
        DensePack { a, trans: false }
    }

    /// Source reading `Aᵀ` (the view stores `k × m`).
    pub fn transposed(a: MatRef<'a>) -> Self {
        DensePack { a, trans: true }
    }
}

impl PackSource for DensePack<'_> {
    fn shape(&self) -> (usize, usize) {
        if self.trans {
            (self.a.cols(), self.a.rows())
        } else {
            self.a.shape()
        }
    }

    fn pack_a(&self, alpha: f32, ic: usize, mc: usize, pc: usize, kc: usize, out: &mut [f32]) {
        pack_a_dense(self.a, self.trans, alpha, ic, mc, pc, kc, out);
    }
}

// ---------------------------------------------------------------------------
// Fused entry points
// ---------------------------------------------------------------------------

/// `C = α·S·B + β·C`, with the A operand produced by a [`PackSource`].
pub fn gemm_source_nn_v<S: PackSource + ?Sized>(
    alpha: f32,
    src: &S,
    b: MatRef<'_>,
    beta: f32,
    c: MatMut<'_>,
) {
    let (m, k) = src.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: source is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    driver(alpha, src, b, false, beta, c);
}

/// `C = α·S·Bᵀ + β·C` (B stored `n × k`), A produced by a [`PackSource`].
pub fn gemm_source_nt_v<S: PackSource + ?Sized>(
    alpha: f32,
    src: &S,
    b: MatRef<'_>,
    beta: f32,
    c: MatMut<'_>,
) {
    let (m, k) = src.shape();
    let (n, kb) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: source is {m}x{k}, Bᵀ is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    driver(alpha, src, b, true, beta, c);
}

// ---------------------------------------------------------------------------
// bf16 A-panel sources and entry points
// ---------------------------------------------------------------------------

/// A source of packed **bf16** A panels — the half-width twin of
/// [`PackSource`] (same `(ic, mc, pc, kc)` protocol, same MR
/// interleave, same zero padding).
///
/// `α` must be applied *before* the bf16 rounding so the stored panel
/// carries exactly one quantisation; producers that accumulate (the
/// fused aggregation) do so in f32 and round once on the final scatter.
pub trait PackSourceBf16: Sync {
    /// Logical shape `(m, k)` of the A operand.
    fn shape(&self) -> (usize, usize);

    /// Pack `bf16(α·A[ic..ic+mc, pc..pc+kc])` into MR-tall row panels
    /// (layout as [`PackSource::pack_a`], u16-width elements).
    fn pack_a_bf16(&self, alpha: f32, ic: usize, mc: usize, pc: usize, kc: usize, out: &mut [Bf16]);

    /// Pack the same block **row-major** for the AMX tile driver:
    /// `out[r·kc_pad + kk] = bf16(α·A[ic+r, pc+kk])`, rows past `mc` and
    /// depth past `kc` zero-filled. `out.len()` is `mc_pad · kc_pad`
    /// with both dimensions padded to the tile grid.
    ///
    /// The default goes through [`Self::pack_a_bf16`] and de-interleaves
    /// — correct for any source; producers whose natural output is a
    /// contiguous row (the dense and fused-aggregation sources) override
    /// it to skip the intermediate scatter.
    #[allow(clippy::too_many_arguments)]
    fn pack_a_bf16_rowmajor(
        &self,
        alpha: f32,
        ic: usize,
        mc: usize,
        pc: usize,
        kc: usize,
        kc_pad: usize,
        out: &mut [Bf16],
    ) {
        let panels = mc.div_ceil(MR);
        scratch::with_buf_u16(panels * kc * MR, |lin| {
            self.pack_a_bf16(alpha, ic, mc, pc, kc, bf16::from_bits_slice_mut(lin));
            out.fill(Bf16::ZERO);
            for r in 0..mc {
                let panel = &lin[(r / MR) * kc * MR..];
                let dst = &mut out[r * kc_pad..][..kc];
                for (kk, d) in dst.iter_mut().enumerate() {
                    *d = Bf16(panel[kk * MR + r % MR]);
                }
            }
        });
    }
}

/// The dense [`PackSourceBf16`]: an A operand already stored bf16
/// (quantised activations, bf16 shard feature rows). With `α = 1` the
/// pack is a pure u16 interleave — no conversion at all; other `α`
/// widen, scale and re-round (documented single extra rounding).
pub struct DensePackBf16<'a> {
    a: Bf16MatRef<'a>,
}

impl<'a> DensePackBf16<'a> {
    pub fn new(a: Bf16MatRef<'a>) -> Self {
        DensePackBf16 { a }
    }
}

impl PackSourceBf16 for DensePackBf16<'_> {
    fn shape(&self) -> (usize, usize) {
        (self.a.rows(), self.a.cols())
    }

    fn pack_a_bf16(
        &self,
        alpha: f32,
        ic: usize,
        mc: usize,
        pc: usize,
        kc: usize,
        out: &mut [Bf16],
    ) {
        let panels = mc.div_ceil(MR);
        debug_assert_eq!(out.len(), panels * kc * MR);
        for (p, panel) in out.chunks_exact_mut(kc * MR).enumerate() {
            let r0 = p * MR;
            let rows_here = MR.min(mc - r0);
            for r in 0..rows_here {
                let src = &self.a.row(ic + r0 + r)[pc..pc + kc];
                if alpha == 1.0 {
                    for (kk, &s) in src.iter().enumerate() {
                        panel[kk * MR + r] = s;
                    }
                } else {
                    for (kk, &s) in src.iter().enumerate() {
                        panel[kk * MR + r] = Bf16::from_f32(alpha * s.to_f32());
                    }
                }
            }
            if rows_here < MR {
                for kk in 0..kc {
                    panel[kk * MR + rows_here..(kk + 1) * MR].fill(Bf16::ZERO);
                }
            }
        }
    }

    fn pack_a_bf16_rowmajor(
        &self,
        alpha: f32,
        ic: usize,
        mc: usize,
        pc: usize,
        kc: usize,
        kc_pad: usize,
        out: &mut [Bf16],
    ) {
        // Already row-major bf16 storage: at α = 1 the pack is a straight
        // row copy; other α widen, scale and re-round.
        for (r, dst) in out.chunks_exact_mut(kc_pad).enumerate() {
            if r < mc {
                let src = &self.a.row(ic + r)[pc..pc + kc];
                if alpha == 1.0 {
                    dst[..kc].copy_from_slice(src);
                } else {
                    for (d, &s) in dst[..kc].iter_mut().zip(src) {
                        *d = Bf16::from_f32(alpha * s.to_f32());
                    }
                }
                dst[kc..].fill(Bf16::ZERO);
            } else {
                dst.fill(Bf16::ZERO);
            }
        }
    }
}

/// Adapter giving every existing f32 [`PackSource`] a bf16 panel path:
/// the wrapped source packs `α·A` into f32 scratch (one L2-resident
/// panel), which is rounded once into the bf16 panel. This is how
/// producers "ride along" without a bf16-native implementation.
pub struct QuantizePack<'a, S: PackSource + ?Sized>(pub &'a S);

impl<S: PackSource + ?Sized> PackSourceBf16 for QuantizePack<'_, S> {
    fn shape(&self) -> (usize, usize) {
        self.0.shape()
    }

    fn pack_a_bf16(
        &self,
        alpha: f32,
        ic: usize,
        mc: usize,
        pc: usize,
        kc: usize,
        out: &mut [Bf16],
    ) {
        scratch::with_buf(out.len(), |tmp| {
            self.0.pack_a(alpha, ic, mc, pc, kc, tmp);
            for (d, &s) in out.iter_mut().zip(tmp.iter()) {
                *d = Bf16::from_f32(s);
            }
        });
    }
}

/// `C = α·S·B + β·C` on **bf16 panels with f32 accumulate**: A panels
/// come from a [`PackSourceBf16`], B is rounded to bf16 at pack time,
/// and the selected tier's bf16 microkernel widens both in registers.
/// C and the accumulation stay f32.
pub fn gemm_source_nn_bf16_v<S: PackSourceBf16 + ?Sized>(
    alpha: f32,
    src: &S,
    b: MatRef<'_>,
    beta: f32,
    c: MatMut<'_>,
) {
    let (m, k) = src.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "inner dimensions must match: source is {m}x{k}, B is {kb}x{n}"
    );
    assert_eq!(c.shape(), (m, n), "C shape mismatch");
    driver_bf16(alpha, src, b, beta, c);
}

/// `C = α·A·B + β·C` with a bf16-stored A (convenience wrapper over
/// [`DensePackBf16`]).
pub fn gemm_bf16_nn_v(alpha: f32, a: Bf16MatRef<'_>, b: MatRef<'_>, beta: f32, c: MatMut<'_>) {
    gemm_source_nn_bf16_v(alpha, &DensePackBf16::new(a), b, beta, c);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Pointer wrapper for handing disjoint C row blocks to parallel tasks.
#[derive(Clone, Copy)]
struct CPtr {
    ptr: *mut f32,
    row_stride: usize,
}

// SAFETY: tasks write disjoint row ranges of C (each `ic` block is owned
// by exactly one task) and never read rows they do not own.
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

fn driver<S: PackSource + ?Sized>(
    alpha: f32,
    a: &S,
    b: MatRef<'_>,
    b_trans: bool,
    beta: f32,
    mut c: MatMut<'_>,
) {
    // Logical dimensions: C is m×n, reduction length k.
    let (m, n) = c.shape();
    let k = a.shape().1;

    if m == 0 || n == 0 {
        return;
    }
    scale_c(&mut c, beta);
    if k == 0 || alpha == 0.0 {
        return;
    }

    let c_base = CPtr {
        ptr: c.as_mut_ptr(),
        row_stride: c.row_stride(),
    };

    // Resolve the microkernel once, on the calling thread (honouring any
    // `with_tier` override there), and carry it into the parallel tasks.
    let kern = ukernel::current_kernel();
    let nr = kern.nr;

    let ic_blocks = m.div_ceil(MC);
    for jc in (0..n).step_by(kern.nc) {
        let nc = kern.nc.min(n - jc);
        let b_panels = nc.div_ceil(nr);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            scratch::with_buf(b_panels * kc * nr, |b_pack| {
                pack_b(b, b_trans, pc, kc, jc, nc, nr, b_pack);
                let b_pack = &*b_pack;
                (0..ic_blocks).into_par_iter().for_each(|blk| {
                    let ic = blk * MC;
                    let mc = MC.min(m - ic);
                    let a_panels = mc.div_ceil(MR);
                    scratch::with_buf(a_panels * kc * MR, |a_pack| {
                        a.pack_a(alpha, ic, mc, pc, kc, a_pack);
                        multiply_block(kern, a_pack, b_pack, c_base, ic, mc, jc, nc, kc);
                    });
                });
            });
        }
    }
}

/// The bf16-panel driver: [`driver`]'s blocking with u16 panel scratch
/// and the tier's bf16 microkernel. Only the `nn` orientation exists —
/// the backward GEMMs (`tn`/`nt`) stay on the f32 master path.
fn driver_bf16<S: PackSourceBf16 + ?Sized>(
    alpha: f32,
    a: &S,
    b: MatRef<'_>,
    beta: f32,
    mut c: MatMut<'_>,
) {
    let (m, n) = c.shape();
    let k = a.shape().1;

    if m == 0 || n == 0 {
        return;
    }
    scale_c(&mut c, beta);
    if k == 0 || alpha == 0.0 {
        return;
    }

    let c_base = CPtr {
        ptr: c.as_mut_ptr(),
        row_stride: c.row_stride(),
    };

    let kern = ukernel::current_kernel();

    // At the top tier, hand the whole block schedule to the AMX tile
    // driver when the unit is present — the only path on these parts
    // where bf16 buys compute throughput, not just bandwidth.
    #[cfg(target_arch = "x86_64")]
    {
        if kern.tier == Tier::Avx512 && crate::amx::bf16_ready() {
            driver_bf16_amx(alpha, a, b, c_base, m, n, k);
            return;
        }
    }

    let nr = kern.nr;

    let ic_blocks = m.div_ceil(MC);
    // A paired (native-dot) kernel reads pair-interleaved panels of
    // `next_even(kc)` rows; panels are packed in the standard layout and
    // interleaved once per pack, amortised over every tile re-read.
    let kc_rows = |kc: usize| kern.bf16_panel_rows(kc);
    for jc in (0..n).step_by(kern.nc) {
        let nc = kern.nc.min(n - jc);
        let b_panels = nc.div_ceil(nr);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            scratch::with_buf_u16(b_panels * kc_rows(kc) * nr, |b_bits| {
                if kern.bf16_paired() {
                    scratch::with_buf_u16(b_panels * kc * nr, |lin| {
                        pack_b_bf16(b, pc, kc, jc, nc, nr, bf16::from_bits_slice_mut(lin));
                        ukernel::pair_interleave_bf16_panels(lin, b_bits, kc, nr, kc_rows(kc));
                    });
                } else {
                    pack_b_bf16(b, pc, kc, jc, nc, nr, bf16::from_bits_slice_mut(b_bits));
                }
                let b_pack = bf16::from_bits_slice(b_bits);
                (0..ic_blocks).into_par_iter().for_each(|blk| {
                    let ic = blk * MC;
                    let mc = MC.min(m - ic);
                    let a_panels = mc.div_ceil(MR);
                    scratch::with_buf_u16(a_panels * kc_rows(kc) * MR, |a_bits| {
                        if kern.bf16_paired() {
                            scratch::with_buf_u16(a_panels * kc * MR, |lin| {
                                a.pack_a_bf16(
                                    alpha,
                                    ic,
                                    mc,
                                    pc,
                                    kc,
                                    bf16::from_bits_slice_mut(lin),
                                );
                                ukernel::pair_interleave_bf16_panels(
                                    lin,
                                    a_bits,
                                    kc,
                                    MR,
                                    kc_rows(kc),
                                );
                            });
                        } else {
                            a.pack_a_bf16(alpha, ic, mc, pc, kc, bf16::from_bits_slice_mut(a_bits));
                        }
                        let a_pack = bf16::from_bits_slice(a_bits);
                        multiply_block_bf16(kern, a_pack, b_pack, c_base, ic, mc, jc, nc, kc);
                    });
                });
            });
        }
    }
}

/// The AMX tile driver: same `MC×KC` block schedule as [`driver_bf16`],
/// but panels are laid out for the tile unit — A blocks **row-major**
/// (what `tileloadd` strides over; produced directly by
/// [`PackSourceBf16::pack_a_bf16_rowmajor`], no MR interleave), B in
/// 16-column VNNI pair-interleaved panels, both zero-padded to the
/// 32×32×32 tile grid. Each microkernel call covers a 32×32 block of C
/// with the accumulation held in tile registers across the whole `kc`.
#[cfg(target_arch = "x86_64")]
fn driver_bf16_amx<S: PackSourceBf16 + ?Sized>(
    alpha: f32,
    a: &S,
    b: MatRef<'_>,
    c_base: CPtr,
    m: usize,
    n: usize,
    k: usize,
) {
    use crate::amx::{self, TILE_K, TILE_M, TILE_N};
    /// B VNNI panel width: half a C-tile column block.
    const NR_AMX: usize = 16;
    /// C column strip per packed-B round (panel bytes stay L2-resident:
    /// `512 · KC · 2` = 256 KiB).
    const NC_AMX: usize = 512;

    let ic_blocks = m.div_ceil(MC);
    for jc in (0..n).step_by(NC_AMX) {
        let nc = NC_AMX.min(n - jc);
        let b_panels = nc.div_ceil(NR_AMX);
        // Pad the panel count to the 2-panel C-tile grid; a dangling
        // half tile (nc % 32 ≤ 16) reads an all-zero right panel.
        let panels_pad = nc.div_ceil(TILE_N) * 2;
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let kc_pad = kc.next_multiple_of(TILE_K);
            scratch::with_buf_u16(panels_pad * kc_pad * NR_AMX, |b_vnni| {
                scratch::with_buf_u16(b_panels * kc * NR_AMX, |lin| {
                    pack_b_bf16(b, pc, kc, jc, nc, NR_AMX, bf16::from_bits_slice_mut(lin));
                    b_vnni[b_panels * kc_pad * NR_AMX..].fill(0);
                    ukernel::pair_interleave_bf16_panels(
                        lin,
                        &mut b_vnni[..b_panels * kc_pad * NR_AMX],
                        kc,
                        NR_AMX,
                        kc_pad,
                    );
                });
                let b_vnni = &*b_vnni;
                (0..ic_blocks).into_par_iter().for_each(|blk| {
                    amx::ensure_thread_configured();
                    let ic = blk * MC;
                    let mc = MC.min(m - ic);
                    let mc_pad = mc.next_multiple_of(TILE_M);
                    scratch::with_buf_u16(mc_pad * kc_pad, |a_bits| {
                        a.pack_a_bf16_rowmajor(
                            alpha,
                            ic,
                            mc,
                            pc,
                            kc,
                            kc_pad,
                            bf16::from_bits_slice_mut(a_bits),
                        );
                        multiply_block_amx(a_bits, b_vnni, c_base, ic, mc, mc_pad, jc, nc, kc_pad);
                    });
                });
            });
        }
    }
}

/// 32×32 f32 tile buffer the AMX kernel `tilestored`s into.
#[cfg(target_arch = "x86_64")]
#[repr(align(64))]
struct AccTile32([f32; 32 * 32]);

/// `C[ic..ic+mc, jc..jc+nc] += rowmajor_A · vnni_B` for one row block on
/// the tile unit: the store loop mirrors [`multiply_block`], clipped to
/// the block edge.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn multiply_block_amx(
    a_bits: &[u16],
    b_vnni: &[u16],
    c_base: CPtr,
    ic: usize,
    mc: usize,
    mc_pad: usize,
    jc: usize,
    nc: usize,
    kc_pad: usize,
) {
    use crate::amx::{self, TILE_K, TILE_M, TILE_N};
    let kpads = kc_pad / TILE_K;
    // One 16-column VNNI panel: `kc_pad/2` pair rows × 32 elements.
    let panel_len = kc_pad * 16;
    let mut acc = AccTile32([0.0f32; 32 * 32]);
    for jt in 0..nc.div_ceil(TILE_N) {
        let jr = jt * TILE_N;
        let tile_cols = TILE_N.min(nc - jr);
        let b0 = b_vnni[2 * jt * panel_len..].as_ptr();
        let b1 = b_vnni[(2 * jt + 1) * panel_len..].as_ptr();
        for it in 0..mc_pad / TILE_M {
            let ir = it * TILE_M;
            let tile_rows = TILE_M.min(mc - ir);
            // SAFETY: the packed A block holds `mc_pad ≥ ir+32` rows of
            // `kc_pad` elements, `b0`/`b1` each cover one full padded
            // panel (`panels_pad` is even), and `acc` is 32×32. The
            // driver gated on `amx::bf16_ready()` and configured this
            // thread's tile palette.
            unsafe {
                amx::tile_kernel_32x32(
                    kpads,
                    a_bits.as_ptr().add(ir * kc_pad),
                    kc_pad * 2,
                    b0,
                    b1,
                    acc.0.as_mut_ptr(),
                );
            }
            for (r, acc_row) in acc.0.chunks_exact(TILE_N).enumerate().take(tile_rows) {
                // SAFETY: this task owns rows [ic, ic+mc) of C, and
                // jc+jr+tile_cols ≤ n by construction.
                let c_row: &mut [f32] = unsafe {
                    std::slice::from_raw_parts_mut(
                        c_base.ptr.add((ic + ir + r) * c_base.row_stride + jc + jr),
                        tile_cols,
                    )
                };
                for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
                    *cv += *av;
                }
            }
        }
    }
}

/// Stack tile buffer for the microkernel output, 64-byte aligned so the
/// widest tier's stores stay within cache lines.
#[repr(align(64))]
struct AccTile([f32; MR * NR_MAX]);

/// `C[ic..ic+mc, jc..jc+nc] += packed_A · packed_B` for one row block.
#[allow(clippy::too_many_arguments)]
fn multiply_block(
    kern: &Kernel,
    a_pack: &[f32],
    b_pack: &[f32],
    c_base: CPtr,
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    kc: usize,
) {
    let nr = kern.nr;
    // Tile buffer the microkernel overwrites per call (row-major MR×nr).
    let mut acc = AccTile([0.0f32; MR * NR_MAX]);
    let acc = &mut acc.0[..MR * nr];
    for (jp, b_panel) in b_pack.chunks_exact(kc * nr).enumerate() {
        let jr = jp * nr;
        let tile_cols = nr.min(nc - jr);
        for (ip, a_panel) in a_pack.chunks_exact(kc * MR).enumerate() {
            let ir = ip * MR;
            let tile_rows = MR.min(mc - ir);
            kern.run(kc, a_panel, b_panel, acc);
            // (acc now holds the full tile product for this pc panel.)
            // Store: C[ic+ir .., jc+jr ..] += acc (clipped to the edge).
            for (r, acc_row) in acc.chunks_exact(nr).enumerate().take(tile_rows) {
                // SAFETY: this task owns rows [ic, ic+mc) of C, and
                // jc+jr+tile_cols ≤ n by construction.
                let c_row: &mut [f32] = unsafe {
                    std::slice::from_raw_parts_mut(
                        c_base.ptr.add((ic + ir + r) * c_base.row_stride + jc + jr),
                        tile_cols,
                    )
                };
                for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
                    *cv += *av;
                }
            }
        }
    }
}

/// [`multiply_block`] over bf16 panels: identical tiling and store loop,
/// but the tier's bf16 microkernel widens panel elements in registers
/// (or consumes pair-interleaved panels when the kernel is the native
/// dot-product — panel strides follow [`Kernel::bf16_panel_rows`]).
#[allow(clippy::too_many_arguments)]
fn multiply_block_bf16(
    kern: &Kernel,
    a_pack: &[Bf16],
    b_pack: &[Bf16],
    c_base: CPtr,
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    kc: usize,
) {
    let nr = kern.nr;
    let rows = kern.bf16_panel_rows(kc);
    let mut acc = AccTile([0.0f32; MR * NR_MAX]);
    let acc = &mut acc.0[..MR * nr];
    for (jp, b_panel) in b_pack.chunks_exact(rows * nr).enumerate() {
        let jr = jp * nr;
        let tile_cols = nr.min(nc - jr);
        for (ip, a_panel) in a_pack.chunks_exact(rows * MR).enumerate() {
            let ir = ip * MR;
            let tile_rows = MR.min(mc - ir);
            kern.run_bf16(
                kc,
                bf16::to_bits_slice(a_panel),
                bf16::to_bits_slice(b_panel),
                acc,
            );
            for (r, acc_row) in acc.chunks_exact(nr).enumerate().take(tile_rows) {
                // SAFETY: this task owns rows [ic, ic+mc) of C, and
                // jc+jr+tile_cols ≤ n by construction.
                let c_row: &mut [f32] = unsafe {
                    std::slice::from_raw_parts_mut(
                        c_base.ptr.add((ic + ir + r) * c_base.row_stride + jc + jr),
                        tile_cols,
                    )
                };
                for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
                    *cv += *av;
                }
            }
        }
    }
}

/// Pack `α·A[ic..ic+mc, pc..pc+kc]` (logical orientation) into MR-tall row
/// panels: `out[p*kc*MR + kk*MR + r] = α·A[ic+p·MR+r, pc+kk]`, zero-padding
/// rows past `mc`.
#[allow(clippy::too_many_arguments)]
fn pack_a_dense(
    a: MatRef<'_>,
    a_trans: bool,
    alpha: f32,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    out: &mut [f32],
) {
    let panels = mc.div_ceil(MR);
    debug_assert_eq!(out.len(), panels * kc * MR);
    for (p, panel) in out.chunks_exact_mut(kc * MR).enumerate() {
        let r0 = p * MR;
        let rows_here = MR.min(mc - r0);
        if a_trans {
            // A stored k×m: for fixed kk the MR logical rows are contiguous.
            for (kk, dst) in panel.chunks_exact_mut(MR).enumerate() {
                let src = &a.row(pc + kk)[ic + r0..ic + r0 + rows_here];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = alpha * s;
                }
                dst[rows_here..].fill(0.0);
            }
        } else {
            // A stored m×k: walk each logical row once (contiguous in kk).
            for r in 0..rows_here {
                let src = &a.row(ic + r0 + r)[pc..pc + kc];
                for (kk, &s) in src.iter().enumerate() {
                    panel[kk * MR + r] = alpha * s;
                }
            }
            if rows_here < MR {
                for kk in 0..kc {
                    panel[kk * MR + rows_here..(kk + 1) * MR].fill(0.0);
                }
            }
        }
    }
}

/// Pack `B[pc..pc+kc, jc..jc+nc]` (logical orientation) into `nr`-wide
/// column panels: `out[p*kc*nr + kk*nr + j] = B[pc+kk, jc+p·nr+j]`,
/// zero-padding columns past `nc`. `nr` is the selected microkernel's
/// tile width — the one pack-layout parameter that varies per tier.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: MatRef<'_>,
    b_trans: bool,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
    out: &mut [f32],
) {
    let panels = nc.div_ceil(nr);
    debug_assert_eq!(out.len(), panels * kc * nr);
    for (p, panel) in out.chunks_exact_mut(kc * nr).enumerate() {
        let c0 = p * nr;
        let cols_here = nr.min(nc - c0);
        if b_trans {
            // B stored n×k: each logical column is a contiguous stored row.
            for j in 0..cols_here {
                let src = &b.row(jc + c0 + j)[pc..pc + kc];
                for (kk, &s) in src.iter().enumerate() {
                    panel[kk * nr + j] = s;
                }
            }
            if cols_here < nr {
                for kk in 0..kc {
                    panel[kk * nr + cols_here..(kk + 1) * nr].fill(0.0);
                }
            }
        } else {
            // B stored k×n: one contiguous copy per kk.
            for (kk, dst) in panel.chunks_exact_mut(nr).enumerate() {
                let src = &b.row(pc + kk)[jc + c0..jc + c0 + cols_here];
                dst[..cols_here].copy_from_slice(src);
                dst[cols_here..].fill(0.0);
            }
        }
    }
}

/// [`pack_b`] into bf16 panels: same `nr`-wide layout, each element
/// rounded once (RNE) as it enters the L2-resident panel — this is the
/// pack-time dequantisation boundary; the microkernel widens in
/// registers. Only the `k×n` orientation exists (forward path).
#[allow(clippy::too_many_arguments)]
fn pack_b_bf16(
    b: MatRef<'_>,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
    out: &mut [Bf16],
) {
    let panels = nc.div_ceil(nr);
    debug_assert_eq!(out.len(), panels * kc * nr);
    for (p, panel) in out.chunks_exact_mut(kc * nr).enumerate() {
        let c0 = p * nr;
        let cols_here = nr.min(nc - c0);
        for (kk, dst) in panel.chunks_exact_mut(nr).enumerate() {
            let src = &b.row(pc + kk)[jc + c0..jc + c0 + cols_here];
            for (d, &s) in dst[..cols_here].iter_mut().zip(src) {
                *d = Bf16::from_f32(s);
            }
            dst[cols_here..].fill(Bf16::ZERO);
        }
    }
}

/// `C = β·C`, with BLAS semantics: `β = 0` overwrites even NaN garbage.
fn scale_c(c: &mut MatMut<'_>, beta: f32) {
    if beta == 1.0 {
        return;
    }
    for i in 0..c.rows() {
        let row = c.row_mut(i);
        if beta == 0.0 {
            row.fill(0.0);
        } else {
            for x in row {
                *x *= beta;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reference and baseline kernels
// ---------------------------------------------------------------------------

/// Naive triple-loop reference, used by tests and benches as ground truth.
pub fn matmul_reference(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb);
    let mut c = DMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64; // f64 accumulation for a tighter reference
            for l in 0..k {
                acc += a.get(i, l) as f64 * b.get(l, j) as f64;
            }
            c.set(i, j, acc as f32);
        }
    }
    c
}

/// The seed's unpacked k-blocked kernel (including its inner-loop
/// `aik == 0.0` skip), retained verbatim as the benchmark baseline the
/// packed kernel is measured against. Not used by training.
pub fn matmul_unpacked(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must match");
    let mut c = DMatrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let a_data = a.data();
    let b_data = b.data();
    // Minimum per-task work matching the seed's PAR_GRAIN.
    let rows_per_task = ((1usize << 14) / (n * k).max(1)).clamp(1, m);
    c.data_mut()
        .par_chunks_mut(rows_per_task * n)
        .enumerate()
        .for_each(|(t, c_block)| {
            let i0 = t * rows_per_task;
            let rows_here = c_block.len() / n;
            let mut k0 = 0;
            while k0 < k {
                let k1 = (k0 + KC).min(k);
                for li in 0..rows_here {
                    let a_row = &a_data[(i0 + li) * k..(i0 + li + 1) * k];
                    let c_row = &mut c_block[li * n..(li + 1) * n];
                    for kk in k0..k1 {
                        let aik = a_row[kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b_data[kk * n..(kk + 1) * n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv = bv.mul_add(aik, *cv);
                        }
                    }
                }
                k0 = k1;
            }
        });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize, scale: f32) -> DMatrix {
        // Bounded values keep f32 accumulation error well below tolerances.
        DMatrix::from_fn(rows, cols, |i, j| {
            (((i * cols + j) % 17) as f32 * 0.05 - 0.4) * scale
        })
    }

    #[test]
    fn matmul_matches_reference() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 9, 33), (64, 128, 32)] {
            let a = seq(m, k, 1.0);
            let b = seq(k, n, 2.0);
            let c = matmul(&a, &b);
            let r = matmul_reference(&a, &b);
            assert!(c.max_abs_diff(&r) < 1e-3, "m={m} k={k} n={n}");
        }
    }

    /// Shapes straddling every blocking boundary: MR, every tier's NR
    /// (16 / 32 / 48), KC and MC.
    #[test]
    fn matmul_matches_reference_at_block_edges() {
        let dims = [
            1,
            MR - 1,
            MR,
            MR + 1,
            15,
            17,
            31,
            33,
            47,
            49,
            MC - 1,
            MC + 1,
        ];
        for &m in &dims {
            for &n in &dims {
                for &k in &[1usize, 7, KC - 1, KC + 1] {
                    let a = seq(m, k, 0.7);
                    let b = seq(k, n, 1.1);
                    let c = matmul(&a, &b);
                    let r = matmul_reference(&a, &b);
                    assert!(c.max_abs_diff(&r) < 5e-3, "m={m} k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn tn_matches_transpose_then_multiply() {
        let a = seq(7, 5, 1.0); // k=7, m=5
        let b = seq(7, 6, 1.5);
        let c = matmul_tn(&a, &b);
        let r = matmul_reference(&a.transpose(), &b);
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn nt_matches_transpose_then_multiply() {
        let a = seq(5, 7, 1.0);
        let b = seq(6, 7, 1.5); // Bᵀ is 7x6
        let c = matmul_nt(&a, &b);
        let r = matmul_reference(&a, &b.transpose());
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn alpha_beta_accumulation() {
        let a = seq(3, 3, 1.0);
        let b = DMatrix::eye(3);
        let mut c = DMatrix::filled(3, 3, 1.0);
        gemm_nn(2.0, &a, &b, 0.5, &mut c);
        // c = 2a + 0.5
        for i in 0..3 {
            for j in 0..3 {
                assert!((c.get(i, j) - (2.0 * a.get(i, j) + 0.5)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        // beta = 0 must overwrite even NaN garbage in C (BLAS semantics).
        let a = DMatrix::eye(2);
        let b = DMatrix::eye(2);
        let mut c = DMatrix::filled(2, 2, f32::NAN);
        gemm_nn(1.0, &a, &b, 0.0, &mut c);
        assert!(c.all_finite());
        assert_eq!(c, DMatrix::eye(2));
    }

    #[test]
    fn identity_multiplication() {
        let a = seq(4, 4, 3.0);
        let c = matmul(&a, &DMatrix::eye(4));
        assert!(c.max_abs_diff(&a) < 1e-6);
        let c = matmul(&DMatrix::eye(4), &a);
        assert!(c.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn empty_dimensions() {
        let a = DMatrix::zeros(0, 3);
        let b = DMatrix::zeros(3, 2);
        assert_eq!(matmul(&a, &b).shape(), (0, 2));
        let a = DMatrix::zeros(2, 0);
        let b = DMatrix::zeros(0, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c, DMatrix::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dim_mismatch_panics() {
        matmul(&DMatrix::zeros(2, 3), &DMatrix::zeros(4, 2));
    }

    #[test]
    fn large_parallel_consistency() {
        // A result spanning multiple KC panels, MC blocks and rayon tasks
        // must match the reference.
        let a = seq(100, 300, 0.7);
        let b = seq(300, 50, 1.3);
        let c = matmul(&a, &b);
        let r = matmul_reference(&a, &b);
        assert!(c.max_abs_diff(&r) < 5e-3);
    }

    #[test]
    fn packed_matches_unpacked_seed_kernel() {
        let a = seq(65, 70, 0.9);
        let b = seq(70, 40, 1.2);
        let packed = matmul(&a, &b);
        let unpacked = matmul_unpacked(&a, &b);
        assert!(packed.max_abs_diff(&unpacked) < 1e-4);
    }

    #[test]
    fn every_tier_matches_reference_end_to_end() {
        // Spans several KC panels and MC blocks so each tier's full
        // driver path (packing, strips, edge tiles) is exercised.
        let a = seq(65, 300, 0.8);
        let b = seq(300, 70, 1.2);
        let r = matmul_reference(&a, &b);
        for tier in available_tiers() {
            let c = with_tier(tier, || matmul(&a, &b));
            assert!(c.max_abs_diff(&r) < 5e-3, "tier {}", tier.name());
        }
    }

    #[test]
    fn tiers_are_bit_identical() {
        // Every tier runs the same FMA chain per C element (see the
        // ukernel module docs), so tier choice must not change results
        // at all — not merely within tolerance.
        let a = seq(70, 260, 0.9);
        let b = seq(260, 50, 1.1);
        let reference = with_tier(Tier::Scalar, || matmul(&a, &b));
        for tier in available_tiers() {
            let c = with_tier(tier, || matmul(&a, &b));
            assert_eq!(c, reference, "tier {}", tier.name());
        }
    }

    #[test]
    fn strided_views_multiply_into_column_halves() {
        // C's two column halves written by two separate gemms must equal
        // the concatenation of the dense products.
        let h = seq(10, 6, 1.0);
        let w1 = seq(6, 4, 0.8);
        let w2 = seq(6, 4, 1.3);
        let mut c = DMatrix::filled(10, 8, f32::NAN);
        gemm_nn_v(1.0, h.view(), w1.view(), 0.0, c.view_cols_mut(0, 4));
        gemm_nn_v(1.0, h.view(), w2.view(), 0.0, c.view_cols_mut(4, 8));
        let left = matmul(&h, &w1);
        let right = matmul(&h, &w2);
        for i in 0..10 {
            for j in 0..4 {
                assert!((c.get(i, j) - left.get(i, j)).abs() < 1e-5);
                assert!((c.get(i, j + 4) - right.get(i, j)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn strided_view_operands_read_column_ranges() {
        // Multiply from a column slice of a wider matrix without copying.
        let wide = seq(9, 10, 1.0);
        let b = seq(4, 5, 1.1);
        let mut c = DMatrix::zeros(9, 5);
        gemm_nn_v(1.0, wide.view_cols(3, 7), b.view(), 0.0, c.view_mut());
        // Reference: materialise the slice.
        let sliced = DMatrix::from_fn(9, 4, |i, j| wide.get(i, j + 3));
        let r = matmul_reference(&sliced, &b);
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    /// A [`PackSource`] that computes `A[i,j] = f(i, j)` on the fly —
    /// exercises the producer-packed path against materialised GEMM.
    struct FnSource {
        m: usize,
        k: usize,
    }

    impl FnSource {
        fn at(&self, i: usize, j: usize) -> f32 {
            ((i * 13 + j * 5) % 23) as f32 * 0.1 - 1.0
        }

        fn materialise(&self) -> DMatrix {
            DMatrix::from_fn(self.m, self.k, |i, j| self.at(i, j))
        }
    }

    impl PackSource for FnSource {
        fn shape(&self) -> (usize, usize) {
            (self.m, self.k)
        }

        fn pack_a(&self, alpha: f32, ic: usize, mc: usize, pc: usize, kc: usize, out: &mut [f32]) {
            for (p, panel) in out.chunks_exact_mut(kc * MR).enumerate() {
                let r0 = p * MR;
                let rows_here = MR.min(mc - r0);
                for kk in 0..kc {
                    for r in 0..MR {
                        panel[kk * MR + r] = if r < rows_here {
                            alpha * self.at(ic + r0 + r, pc + kk)
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }

    #[test]
    fn source_nn_matches_materialised() {
        // Shapes straddling MR/MC/KC boundaries so producer packs hit
        // edge panels too.
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (9, 7, 33), (65, 257, 40)] {
            let src = FnSource { m, k };
            let b = seq(k, n, 1.1);
            let mut c = DMatrix::filled(m, n, f32::NAN);
            gemm_source_nn_v(1.0, &src, b.view(), 0.0, c.view_mut());
            let r = matmul(&src.materialise(), &b);
            assert!(c.max_abs_diff(&r) < 1e-4, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn source_nt_matches_materialised_and_accumulates() {
        let (m, k, n) = (20usize, 9usize, 12usize);
        let src = FnSource { m, k };
        let b = seq(n, k, 0.9); // stored n×k for nt
        let mut c = DMatrix::filled(m, n, 0.5);
        gemm_source_nt_v(2.0, &src, b.view(), 1.0, c.view_mut());
        let mut r = DMatrix::filled(m, n, 0.5);
        gemm_nt(2.0, &src.materialise(), &b, 1.0, &mut r);
        assert!(c.max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn strided_tn_nt_match_dense() {
        let a = seq(12, 9, 1.0);
        let d = seq(12, 7, 0.9);
        // dW = Aᵀ·D via views == dense matmul_tn.
        let mut c = DMatrix::zeros(9, 7);
        gemm_tn_v(1.0, a.view(), d.view(), 0.0, c.view_mut());
        assert!(c.max_abs_diff(&matmul_tn(&a, &d)) < 1e-4);
        // dH = D·Wᵀ with W (stored n×k) read from a column range.
        let w_wide = seq(9, 12, 1.0); // take cols 2..7 as a 9×5 "W"
        let w = DMatrix::from_fn(9, 5, |i, j| w_wide.get(i, j + 2));
        let dd = seq(12, 5, 1.0);
        let mut c2 = DMatrix::zeros(12, 9);
        gemm_nt_v(1.0, dd.view(), w_wide.view_cols(2, 7), 0.0, c2.view_mut());
        assert!(c2.max_abs_diff(&matmul_nt(&dd, &w)) < 1e-4);
    }

    /// Quantise a dense matrix to its bf16 storage values.
    fn quantize_mat(m: &DMatrix) -> Vec<Bf16> {
        m.data().iter().map(|&x| Bf16::from_f32(x)).collect()
    }

    /// Exact widening of a quantised matrix back to f32 — the reference
    /// operand for bf16-path comparisons (storage rounding applied, so
    /// only accumulation-order differences remain).
    fn widen_mat(vals: &[Bf16], rows: usize, cols: usize) -> DMatrix {
        DMatrix::from_fn(rows, cols, |i, j| vals[i * cols + j].to_f32())
    }

    #[test]
    fn bf16_matches_widened_reference() {
        // The bf16 path's only deviation from an f32 GEMM over the
        // *widened* operands is accumulation order — panels store the
        // exact quantised values. Shapes straddle MR/NR/KC/MC edges.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (9, 7, 33),
            (65, 257, 49),
            (70, 300, 17),
        ] {
            let a = seq(m, k, 0.8);
            let b = seq(k, n, 1.2);
            let qa = quantize_mat(&a);
            let qb = quantize_mat(&b);
            let r = matmul_reference(&widen_mat(&qa, m, k), &widen_mat(&qb, k, n));
            let mut c = DMatrix::filled(m, n, f32::NAN);
            gemm_bf16_nn_v(1.0, Bf16MatRef::new(&qa, m, k), b.view(), 0.0, c.view_mut());
            assert!(c.max_abs_diff(&r) < 5e-3, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn bf16_tiers_are_bit_identical() {
        // The widen-based bf16 microkernels run the same FMA chain per C
        // element as each other, so tier choice must not change bf16
        // results at all (mirrors `tiers_are_bit_identical`). A tier
        // whose bf16 kernel is the native `vdpbf16ps` dot-product sums
        // each k pair before joining the chain, so it is banded against
        // the widen result instead of bit-compared — the deviation is
        // pure f32 accumulation-order noise, orders of magnitude below
        // the bf16 input rounding.
        let a = seq(70, 260, 0.9);
        let b = seq(260, 50, 1.1);
        let qa = quantize_mat(&a);
        let run = |tier| {
            with_tier(tier, || {
                let mut c = DMatrix::zeros(70, 50);
                gemm_bf16_nn_v(
                    1.0,
                    Bf16MatRef::new(&qa, 70, 260),
                    b.view(),
                    0.0,
                    c.view_mut(),
                );
                c
            })
        };
        let reference = run(Tier::Scalar);
        let scale = reference.data().iter().fold(0f32, |s, &x| s.max(x.abs()));
        for tier in available_tiers() {
            let got = run(tier);
            if bf16_dot_native(tier) {
                assert!(
                    got.max_abs_diff(&reference) <= 1e-5 * scale.max(1.0),
                    "native-dot tier {} outside accumulation band",
                    tier.name()
                );
            } else {
                assert_eq!(got, reference, "tier {}", tier.name());
            }
        }
    }

    #[test]
    fn quantize_pack_rides_along_bit_exact() {
        // QuantizePack rounds the wrapped f32 source's panel once, so at
        // α = 1 it must equal packing the pre-quantised matrix directly.
        let (m, k, n) = (65usize, 257usize, 40usize);
        let src = FnSource { m, k };
        let b = seq(k, n, 1.1);
        let mut via_adapter = DMatrix::filled(m, n, f32::NAN);
        gemm_source_nn_bf16_v(
            1.0,
            &QuantizePack(&src),
            b.view(),
            0.0,
            via_adapter.view_mut(),
        );
        let qa = quantize_mat(&src.materialise());
        let mut direct = DMatrix::filled(m, n, f32::NAN);
        gemm_bf16_nn_v(
            1.0,
            Bf16MatRef::new(&qa, m, k),
            b.view(),
            0.0,
            direct.view_mut(),
        );
        assert_eq!(via_adapter, direct);
    }

    #[test]
    fn bf16_alpha_beta_accumulation() {
        // α ≠ 1 widens, scales and re-rounds the stored A exactly once;
        // β scales C first. Build the same double-rounded operand for
        // the reference.
        let (m, k, n) = (9usize, 20usize, 12usize);
        let a = seq(m, k, 1.0);
        let b = seq(k, n, 0.9);
        let qa = quantize_mat(&a);
        let qb = quantize_mat(&b);
        let a2 = DMatrix::from_fn(m, k, |i, j| {
            Bf16::from_f32(2.0 * qa[i * k + j].to_f32()).to_f32()
        });
        let mut r = matmul_reference(&a2, &widen_mat(&qb, k, n));
        let c0 = seq(m, n, 0.3);
        for i in 0..m {
            for j in 0..n {
                r.set(i, j, r.get(i, j) + 0.5 * c0.get(i, j));
            }
        }
        let mut c = c0.clone();
        gemm_bf16_nn_v(2.0, Bf16MatRef::new(&qa, m, k), b.view(), 0.5, c.view_mut());
        assert!(c.max_abs_diff(&r) < 1e-3);
    }

    #[test]
    fn bf16_result_within_tolerance_of_f32_path() {
        // End-to-end band check: bf16 storage vs the pure-f32 GEMM on
        // the *unquantised* operands stays inside the composed
        // `rel_tolerance` model for depth 1.
        let (m, k, n) = (64usize, 300usize, 48usize);
        let a = seq(m, k, 0.8);
        let b = seq(k, n, 1.2);
        let qa = quantize_mat(&a);
        let f32_c = matmul(&a, &b);
        let mut c = DMatrix::zeros(m, n);
        gemm_bf16_nn_v(1.0, Bf16MatRef::new(&qa, m, k), b.view(), 0.0, c.view_mut());
        let tol = crate::precision::rel_tolerance(crate::Precision::Bf16, 1, k);
        let scale = f32_c.data().iter().fold(0f32, |s, &x| s.max(x.abs()));
        assert!(scale > 0.0);
        for (cv, rv) in c.data().iter().zip(f32_c.data()) {
            assert!(
                (cv - rv).abs() <= tol * scale,
                "bf16 {cv} vs f32 {rv} outside band {tol}"
            );
        }
    }
}
