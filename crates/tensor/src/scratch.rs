//! Thread-local scratch arena for kernel workspaces.
//!
//! The packed GEMM and the propagation kernels need short-lived f32
//! buffers (packed operand panels, pre-scaled gradient copies) on every
//! call. Allocating them each time puts a `malloc`/`free` pair and a page
//! fault storm on the hottest path in training, so [`with_buf`] hands out
//! buffers from a per-thread LIFO pool instead: after warm-up, a steady
//! training loop performs **zero** scratch allocations.
//!
//! Buffers are handed out as `&mut [f32]` whose contents are
//! **unspecified** — callers must fully overwrite the region they read
//! back (the packing routines do, by construction, including their zero
//! padding).
//!
//! The pool is thread-local, so parallel GEMM tasks each reuse their own
//! arena without synchronisation; nesting is supported (a kernel may take
//! a buffer while its caller holds one).

use std::cell::RefCell;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Maximum number of idle buffers kept per thread.
const MAX_POOLED: usize = 16;

/// Scratch alignment in bytes: one cache line, which is also the widest
/// SIMD vector (`zmm`). Packed GEMM panels handed out from here start on
/// this boundary, so the explicit microkernels' vector loads never split
/// a cache line (panel rows are themselves multiples of 64 bytes for the
/// SIMD tiers).
const ALIGN_BYTES: usize = 64;
/// Worst-case f32 elements skipped to reach the alignment boundary.
const ALIGN_SLACK: usize = ALIGN_BYTES / std::mem::size_of::<f32>() - 1;

/// Run `f` with a scratch buffer of exactly `len` elements (unspecified
/// contents), starting on a 64-byte boundary. The buffer returns to this
/// thread's pool afterwards.
pub fn with_buf<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    let need = len + ALIGN_SLACK;
    if buf.capacity() < need {
        crate::alloc::record_alloc();
    }
    // Keep len == max seen so far: growth zero-fills once, later calls
    // just slice. Contents are unspecified per the contract above.
    if buf.len() < need {
        buf.resize(need, 0.0);
    }
    // Alignment offset is computed per call (the pool may hand back a
    // different allocation), but is stable for a given Vec.
    let off = buf.as_ptr().align_offset(ALIGN_BYTES);
    debug_assert!(off <= ALIGN_SLACK);
    let out = f(&mut buf[off..off + len]);
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
    out
}

thread_local! {
    static POOL_U16: RefCell<Vec<Vec<u16>>> = const { RefCell::new(Vec::new()) };
}

/// Worst-case u16 elements skipped to reach the alignment boundary.
const ALIGN_SLACK_U16: usize = ALIGN_BYTES / std::mem::size_of::<u16>() - 1;

/// [`with_buf`] for `u16` scratch — bf16 GEMM panels and quantised
/// activation shadows. Same contract: unspecified contents, 64-byte
/// aligned, returned to a per-thread LIFO pool.
pub fn with_buf_u16<R>(len: usize, f: impl FnOnce(&mut [u16]) -> R) -> R {
    let mut buf = POOL_U16.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    let need = len + ALIGN_SLACK_U16;
    if buf.capacity() < need {
        crate::alloc::record_alloc();
    }
    if buf.len() < need {
        buf.resize(need, 0);
    }
    let off = buf.as_ptr().align_offset(ALIGN_BYTES);
    debug_assert!(off <= ALIGN_SLACK_U16);
    let out = f(&mut buf[off..off + len]);
    POOL_U16.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
    out
}

thread_local! {
    static MATRIX_POOL: RefCell<Vec<crate::DMatrix>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a pooled scratch matrix shaped `rows × cols` (unspecified
/// contents — same contract as [`with_buf`]). Used for whole-matrix
/// temporaries like the pre-scaled gradient copy in the propagation
/// backward pass.
pub fn with_matrix<R>(rows: usize, cols: usize, f: impl FnOnce(&mut crate::DMatrix) -> R) -> R {
    let mut m = MATRIX_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(|| crate::DMatrix::zeros(0, 0));
    m.ensure_shape(rows, cols);
    let out = f(&mut m);
    MATRIX_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(m);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::matrix_allocations;

    #[test]
    fn matrix_scratch_reuses() {
        with_matrix(10, 10, |m| m.fill(1.0));
        let before = matrix_allocations();
        for _ in 0..50 {
            with_matrix(10, 10, |m| {
                m.set(0, 0, 2.0);
                assert_eq!(m.shape(), (10, 10));
            });
            with_matrix(3, 5, |m| assert_eq!(m.shape(), (3, 5)));
        }
        assert_eq!(matrix_allocations(), before);
    }

    #[test]
    fn reuses_buffers_after_warmup() {
        with_buf(1024, |b| b.fill(1.0));
        let before = matrix_allocations();
        for _ in 0..100 {
            with_buf(1024, |b| {
                b[0] = 2.0;
            });
            with_buf(512, |b| {
                b[10] = 3.0;
            });
        }
        assert_eq!(
            matrix_allocations(),
            before,
            "steady state must not allocate"
        );
    }

    #[test]
    fn nested_buffers_are_distinct() {
        with_buf(16, |outer| {
            outer.fill(1.0);
            with_buf(16, |inner| {
                inner.fill(2.0);
            });
            assert!(outer.iter().all(|&x| x == 1.0));
        });
    }

    #[test]
    fn zero_len_works() {
        with_buf(0, |b| assert!(b.is_empty()));
    }

    #[test]
    fn buffers_are_cache_line_aligned() {
        for len in [1usize, 16, 100, 4096] {
            with_buf(len, |b| {
                assert_eq!(b.as_ptr() as usize % ALIGN_BYTES, 0, "len {len}");
                assert_eq!(b.len(), len);
            });
        }
        // Nested buffers are aligned too.
        with_buf(64, |outer| {
            with_buf(32, |inner| {
                assert_eq!(inner.as_ptr() as usize % ALIGN_BYTES, 0);
            });
            assert_eq!(outer.as_ptr() as usize % ALIGN_BYTES, 0);
        });
    }
}
