//! Weight initialisation.
//!
//! GCN weight matrices use Glorot/Xavier uniform initialisation (the
//! default in the paper's Tensorflow reference implementations); all
//! initialisers take an explicit seed so training runs are reproducible.

use crate::matrix::DMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform: `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> DMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    DMatrix::from_fn(rows, cols, |_, _| rng.random_range(-limit..limit))
}

/// Uniform in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> DMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DMatrix::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
}

/// Standard Gaussian scaled by `std`.
pub fn gaussian(rows: usize, cols: usize, std: f32, seed: u64) -> DMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DMatrix::from_fn(rows, cols, |_, _| {
        // Box–Muller from two uniforms; avoids a rand_distr dependency.
        let u1: f32 = rng.random_range(f32::EPSILON..1.0);
        let u2: f32 = rng.random_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_limit_and_seeded() {
        let a = xavier_uniform(20, 30, 42);
        let b = xavier_uniform(20, 30, 42);
        let c = xavier_uniform(20, 30, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let limit = (6.0f32 / 50.0).sqrt();
        assert!(a.data().iter().all(|&x| x.abs() <= limit));
        // Not degenerate.
        assert!(a.frobenius_norm() > 0.0);
    }

    #[test]
    fn uniform_range() {
        let m = uniform(10, 10, -2.0, 3.0, 1);
        assert!(m.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn gaussian_moments() {
        let m = gaussian(100, 100, 2.0, 7);
        let mean = m.data().iter().sum::<f32>() / 10_000.0;
        let var = m
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.4, "var {var}");
        assert!(m.all_finite());
    }
}
