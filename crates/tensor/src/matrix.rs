//! Row-major `f32` matrix.
//!
//! Row-major layout is the deliberate choice for GCN workloads: feature
//! propagation gathers whole *rows* (per-vertex feature vectors) and the
//! feature-partitioned kernel (Alg. 6) slices contiguous column *ranges*
//! within each row, both of which stay unit-stride in this layout.

use rayon::prelude::*;

/// A dense `rows × cols` matrix of `f32`, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DMatrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        crate::alloc::record_alloc();
        DMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        crate::alloc::record_alloc();
        DMatrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a row-major data vector. Panics on size mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        DMatrix { rows, cols, data }
    }

    /// Build elementwise from a function of `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        crate::alloc::record_alloc();
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DMatrix { rows, cols, data }
    }

    /// Reshape to `rows × cols`, reusing the existing buffer whenever its
    /// capacity suffices. **Contents are unspecified afterwards** — this
    /// is the buffer-reuse primitive of the allocation-free training path,
    /// where every caller immediately overwrites the matrix (GEMM with
    /// `β = 0`, `copy_from`, a pack/fill pass, …).
    pub fn ensure_shape(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        if self.data.capacity() < len {
            crate::alloc::record_alloc();
        }
        self.data.resize(len, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Become a copy of `src`, reusing this matrix's buffer if possible.
    pub fn copy_from(&mut self, src: &DMatrix) {
        self.ensure_shape(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Gather rows by index into `out` (`out[k] = self[idx[k]]`), reusing
    /// `out`'s buffer. In-place variant of [`DMatrix::gather_rows`].
    pub fn gather_rows_into(&self, idx: &[u32], out: &mut DMatrix) {
        out.ensure_shape(idx.len(), self.cols);
        let cols = self.cols.max(1);
        out.data
            .par_chunks_exact_mut(cols)
            .zip(idx.par_iter())
            .for_each(|(dst, &i)| {
                dst.copy_from_slice(self.row(i as usize));
            });
    }

    /// Identity-like matrix (1.0 on the main diagonal).
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Backing storage (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing storage (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Sequential iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Parallel iterator over mutable row slices.
    pub fn par_rows_mut(&mut self) -> rayon::slice::ChunksExactMut<'_, f32> {
        let c = self.cols.max(1);
        self.data.par_chunks_exact_mut(c)
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Out-of-place transpose.
    pub fn transpose(&self) -> DMatrix {
        let mut t = DMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Gather rows by index into a new matrix (`out[k] = self[idx[k]]`).
    /// This is `H(0)[V_sub]` in Alg. 1 line 5.
    pub fn gather_rows(&self, idx: &[u32]) -> DMatrix {
        let mut out = DMatrix::zeros(idx.len(), self.cols);
        out.data
            .par_chunks_exact_mut(self.cols.max(1))
            .zip(idx.par_iter())
            .for_each(|(dst, &i)| {
                dst.copy_from_slice(self.row(i as usize));
            });
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Max absolute elementwise difference to another matrix.
    pub fn max_abs_diff(&self, other: &DMatrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True if all elements are finite (no NaN/Inf) — used as a training
    /// sanity check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = DMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn set_and_row_mut() {
        let mut m = DMatrix::zeros(2, 2);
        m.set(0, 1, 5.0);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.data(), &[0.0, 5.0, 7.0, 0.0]);
    }

    #[test]
    fn eye_and_transpose() {
        let m = DMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), m.get(1, 2));
        let e = DMatrix::eye(3);
        assert_eq!(e.transpose(), e);
    }

    #[test]
    fn gather_rows_selects() {
        let m = DMatrix::from_fn(4, 2, |i, _| i as f32);
        let g = m.gather_rows(&[3, 1]);
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn norms_and_diffs() {
        let a = DMatrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        let b = DMatrix::from_vec(1, 2, vec![3.0, 6.0]);
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    #[test]
    fn finite_check() {
        let mut m = DMatrix::zeros(1, 2);
        assert!(m.all_finite());
        m.set(0, 0, f32::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn zero_sized() {
        let m = DMatrix::zeros(0, 5);
        assert_eq!(m.rows_iter().count(), 0);
        let m = DMatrix::zeros(3, 0);
        assert_eq!(m.rows_iter().count(), 0); // zero-width rows collapse
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_size_mismatch() {
        DMatrix::from_vec(2, 2, vec![1.0; 3]);
    }
}
