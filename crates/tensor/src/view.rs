//! Borrowed, strided matrix views.
//!
//! A [`MatRef`]/[`MatMut`] is a `rows × cols` window whose consecutive rows
//! are `row_stride` elements apart in the backing slice. Views let the GEMM
//! kernels read operands and write results directly inside a larger matrix
//! — e.g. the neighbor/self column halves of a concatenated GCN activation
//! — without materialising sub-matrix copies. The packing step of the GEMM
//! absorbs the stride, so strided operands run at the same speed as dense
//! ones.

use crate::matrix::DMatrix;

/// Immutable strided view.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    row_stride: usize,
}

impl<'a> MatRef<'a> {
    /// View over `data`, whose row `i` occupies
    /// `data[i*row_stride .. i*row_stride + cols]`.
    ///
    /// # Panics
    /// Panics if the window exceeds `data`.
    pub fn new(data: &'a [f32], rows: usize, cols: usize, row_stride: usize) -> Self {
        assert!(cols <= row_stride || rows <= 1, "rows overlap");
        if rows > 0 {
            let need = (rows - 1) * row_stride + cols;
            assert!(need <= data.len(), "view out of bounds");
        }
        MatRef {
            data,
            rows,
            cols,
            row_stride,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.row_stride..i * self.row_stride + self.cols]
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j]
    }

    /// Restrict to a column range.
    pub fn col_range(&self, lo: usize, hi: usize) -> MatRef<'a> {
        assert!(lo <= hi && hi <= self.cols);
        MatRef {
            data: &self.data[lo..],
            rows: self.rows,
            cols: hi - lo,
            row_stride: self.row_stride,
        }
    }
}

/// Mutable strided view.
pub struct MatMut<'a> {
    data: &'a mut [f32],
    rows: usize,
    cols: usize,
    row_stride: usize,
}

impl<'a> MatMut<'a> {
    /// Mutable view with the same layout rules as [`MatRef::new`].
    pub fn new(data: &'a mut [f32], rows: usize, cols: usize, row_stride: usize) -> Self {
        assert!(cols <= row_stride || rows <= 1, "rows overlap");
        if rows > 0 {
            let need = (rows - 1) * row_stride + cols;
            assert!(need <= data.len(), "view out of bounds");
        }
        MatMut {
            data,
            rows,
            cols,
            row_stride,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.row_stride..i * self.row_stride + self.cols]
    }

    /// Reborrow immutably.
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            row_stride: self.row_stride,
        }
    }

    /// Base pointer (row `i`, column `j` lives at `i*row_stride + j`).
    /// Used by the GEMM driver to hand disjoint row blocks to parallel
    /// tasks.
    pub(crate) fn as_mut_ptr(&mut self) -> *mut f32 {
        self.data.as_mut_ptr()
    }

    /// Restrict to a column range.
    pub fn col_range_mut(&mut self, lo: usize, hi: usize) -> MatMut<'_> {
        assert!(lo <= hi && hi <= self.cols);
        MatMut {
            data: &mut self.data[lo..],
            rows: self.rows,
            cols: hi - lo,
            row_stride: self.row_stride,
        }
    }
}

impl DMatrix {
    /// Whole-matrix immutable view.
    pub fn view(&self) -> MatRef<'_> {
        MatRef {
            data: self.data(),
            rows: self.rows(),
            cols: self.cols(),
            row_stride: self.cols(),
        }
    }

    /// Immutable view of columns `lo..hi`.
    pub fn view_cols(&self, lo: usize, hi: usize) -> MatRef<'_> {
        self.view().col_range(lo, hi)
    }

    /// Whole-matrix mutable view.
    pub fn view_mut(&mut self) -> MatMut<'_> {
        let (rows, cols) = self.shape();
        MatMut {
            data: self.data_mut(),
            rows,
            cols,
            row_stride: cols,
        }
    }

    /// Mutable view of columns `lo..hi`.
    pub fn view_cols_mut(&mut self, lo: usize, hi: usize) -> MatMut<'_> {
        assert!(lo <= hi && hi <= self.cols());
        let (rows, cols) = self.shape();
        if rows == 0 || lo == hi {
            return MatMut {
                data: &mut [],
                rows,
                cols: hi - lo,
                row_stride: cols.max(1),
            };
        }
        MatMut {
            data: &mut self.data_mut()[lo..],
            rows,
            cols: hi - lo,
            row_stride: cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_index_correctly() {
        let m = DMatrix::from_fn(3, 4, |i, j| (i * 10 + j) as f32);
        let v = m.view();
        assert_eq!(v.shape(), (3, 4));
        assert_eq!(v.get(2, 3), 23.0);
        assert_eq!(v.row(1), &[10.0, 11.0, 12.0, 13.0]);
        let c = m.view_cols(1, 3);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.get(2, 0), 21.0);
        assert_eq!(c.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn mutable_column_views_write_disjointly() {
        let mut m = DMatrix::zeros(2, 5);
        {
            let mut left = m.view_cols_mut(0, 2);
            left.row_mut(0).fill(1.0);
            left.row_mut(1).fill(2.0);
        }
        {
            let mut right = m.view_cols_mut(2, 5);
            right.row_mut(1)[2] = 9.0;
        }
        assert_eq!(m.row(0), &[1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[2.0, 2.0, 0.0, 0.0, 9.0]);
    }

    #[test]
    fn zero_sized_views() {
        let mut m = DMatrix::zeros(0, 4);
        assert_eq!(m.view().rows(), 0);
        assert_eq!(m.view_cols_mut(1, 3).rows(), 0);
        let mut m = DMatrix::zeros(3, 4);
        assert_eq!(m.view_cols_mut(2, 2).cols(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_view_panics() {
        let data = vec![0.0f32; 10];
        MatRef::new(&data, 3, 4, 4);
    }
}
