//! SIMD microkernel tiers and their runtime dispatch.
//!
//! The packed GEMM in [`crate::gemm`] does all of its arithmetic inside an
//! `MR×NR` register-tile microkernel. This module provides that microkernel
//! at three explicitness tiers and picks one **at runtime**:
//!
//! | tier     | NR | ISA            | implementation                         |
//! |----------|----|----------------|----------------------------------------|
//! | `avx512` | 48 | AVX-512F       | `_mm512_fmadd_ps`, 8×3 zmm accumulators |
//! | `avx2`   | 16 | AVX2 + FMA     | `_mm256_fmadd_ps`, two 4×2 ymm half-tiles |
//! | `scalar` | 32 | any            | virtual-vector form, LLVM autovectorised |
//!
//! All tiers share the A-panel layout (`MR`-interleaved, [`MR`] is fixed at
//! 8 so [`crate::gemm::PackSource`] producers are tier-agnostic), but each
//! sizes its own B-panel width `NR` to its register file: wide enough that
//! the FMA ports, not the load ports, are the bottleneck, while the
//! accumulator tile plus the B vectors still fit the architectural
//! registers without spills.
//!
//! # Dispatch
//!
//! The process-wide default tier is resolved **once** (first GEMM call)
//! from the `GSGCN_KERNEL` environment variable:
//!
//! * `auto` (or unset) — best tier the CPU supports, probed with
//!   `is_x86_feature_detected!`;
//! * `scalar` / `avx2` / `avx512` — force that tier (panics with a clear
//!   message if the CPU lacks the ISA — CI uses this to exercise fallback
//!   kernels on capable runners);
//! * anything else — panic (misconfiguration should be loud).
//!
//! [`with_tier`] overrides the tier for the current thread for the duration
//! of a closure; the GEMM driver reads the selection on the *calling*
//! thread and carries the resolved [`Kernel`] into its parallel tasks, so
//! the override composes with thread pools as long as it wraps the GEMM
//! call itself. Tests use this to run every available tier in one process.
//!
//! # Numerical equivalence
//!
//! Every tier computes each C element as the same sequence of fused
//! multiply-adds over `kc` (one chain per element, `pc`-major), so tiers
//! agree to the last bit on the same input — pinned (to 1e-4, defensively)
//! by the tier-equivalence proptests in `tests/proptest_packed_gemm.rs`.
//!
//! # Precision tiers
//!
//! Each dispatch-table row carries **two** entry points over the same
//! `MR×NR` tile geometry: the f32 kernel (`ukr`) and a bf16-panel kernel
//! (`ukr_bf16`) that reads `u16` A/B panels, widens them in registers
//! (bf16 → f32 is a 16-bit left shift: `_mm512_slli_epi32` /
//! `_mm256_slli_epi32` after a zero-extending `cvtepu16` load; the
//! scalar tier shifts in plain code) and accumulates in f32. Panels stay
//! `MR`-interleaved with identical indices, only the element width
//! halves — so the blocked driver, the [`crate::gemm::PackSource`]
//! protocol and the tile geometry are shared across precisions, and the
//! bandwidth-bound panel traffic (packed B re-streamed per row block,
//! packed A re-swept per column strip) halves. Accumulation never
//! narrows: each C element is still one f32 FMA chain over `kc`, so the
//! only error source is the input rounding — |q(x)−x| ≤ 2⁻⁸·|x| per
//! element, which is what makes the precision-equivalence tests
//! tolerance-banded rather than bit-identical (see `gemm.rs`).
//! Within one precision, the widen-based tiers agree bit-for-bit.
//!
//! ## Native bf16 dot-product (AVX512-BF16)
//!
//! On CPUs with `avx512bf16` (+`avx512bw`), the avx512 row's bf16 entry
//! upgrades to a `vdpbf16ps` kernel: each instruction multiplies 32 bf16
//! pairs and accumulates 16 f32 lanes — **two** k-steps per FMA-port
//! issue, doubling the peak MAC rate over the widen kernels. It consumes
//! **pair-interleaved** panels ([`Kernel::bf16_paired`]): consecutive
//! k-rows are merged so element pairs `(kk, kk+1)` sit adjacently, and an
//! odd `kc` tail is padded with a zero row (a zero pair contributes
//! nothing). The GEMM driver performs that interleave once per packed
//! panel ([`pair_interleave_bf16_panels`]), amortised across every tile
//! that re-reads the panel. `vdpbf16ps` sums each pair before joining the
//! f32 chain (and flushes denormals), so this kernel is tolerance-banded
//! against the widen tiers rather than bit-identical — well inside the
//! bf16 storage-rounding band the precision tests already allow.
//!
//! In practice `vdpbf16ps` only *matches* the f32 peak on current parts
//! (it issues on one port; the f32 FMA on two), so above it the GEMM
//! driver escalates once more: when the **AMX** tile unit is present
//! ([`crate::amx`]), the bf16 driver bypasses the vector kernels
//! entirely for a `tdpbf16ps` tile schedule — that is where bf16
//! storage buys real compute throughput (measured ~5× over the f32
//! path on the GCN layer shape). [`bf16_engine`] reports which path a
//! tier takes; `GSGCN_AMX=0` forces the vector kernels.

use std::cell::Cell;
use std::sync::OnceLock;

/// Microkernel tile height (rows of C per register tile). Fixed across
/// tiers: the packed A-panel layout (and therefore every
/// [`crate::gemm::PackSource`] implementation) interleaves rows in groups
/// of `MR`.
pub const MR: usize = 8;

/// Upper bound on any tier's `NR` — sizes the driver's stack accumulator.
pub const NR_MAX: usize = 64;

const NR_SCALAR: usize = 32;
#[cfg(target_arch = "x86_64")]
const NR_AVX2: usize = 16;
#[cfg(target_arch = "x86_64")]
const NR_AVX512: usize = 48;

/// How many `kk` iterations ahead the explicit tiers prefetch the A
/// panel, in rows of `MR` f32 (8 rows × 32 B = two cache lines ahead).
/// The A panel is read once per tile at stride `MR·4 = 32` B — too sparse
/// a footprint for the L2 streamer to reliably run ahead of the FMA
/// chain, so the kernel issues the touch itself. Prefetching past the
/// panel's end is benign (`prefetch` never faults), so the loop needs no
/// tail guard.
#[cfg(target_arch = "x86_64")]
const A_PF_DIST: usize = 8;

/// A microkernel tier. Order is ascending preference for auto-selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Portable fallback: fixed-lane virtual vectors that LLVM collapses
    /// to whatever SIMD the target has. Correct everywhere; fast only when
    /// the autovectoriser cooperates.
    Scalar,
    /// Explicit AVX2+FMA kernel (`ymm`, 8 f32 lanes).
    Avx2,
    /// Explicit AVX-512F kernel (`zmm`, 16 f32 lanes).
    Avx512,
}

/// All tiers, in ascending preference order.
pub const ALL_TIERS: [Tier; 3] = [Tier::Scalar, Tier::Avx2, Tier::Avx512];

impl Tier {
    /// The tier's `GSGCN_KERNEL` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Avx2 => "avx2",
            Tier::Avx512 => "avx512",
        }
    }

    /// Parse a `GSGCN_KERNEL` value (case-insensitive). `auto` is handled
    /// by the caller; this returns `None` for it and any unknown value.
    pub fn parse(s: &str) -> Option<Tier> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Tier::Scalar),
            "avx2" => Some(Tier::Avx2),
            "avx512" => Some(Tier::Avx512),
            _ => None,
        }
    }

    /// Storage precisions this tier's dispatch row implements (every
    /// tier carries both an f32 and a bf16-panel kernel). Listed by
    /// `gsgcn kernel --probe` so archived bench records stay
    /// attributable to a (tier, precision) pair.
    pub fn precisions(self) -> &'static [&'static str] {
        &["f32", "bf16"]
    }

    /// Whether this CPU can run the tier.
    pub fn is_available(self) -> bool {
        match self {
            Tier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Tier::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Tier::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// `acc[r·nr + j] = Σ_kk a[kk·MR + r] · b[kk·nr + j]` (acc overwritten).
type MicroKernelFn = unsafe fn(kc: usize, a: *const f32, b: *const f32, acc: *mut f32);

/// Same tile product over **bf16 panels**: `a`/`b` hold bf16 bit
/// patterns, widened in registers; `acc` stays f32 (see the module docs'
/// precision section).
type MicroKernelBf16Fn = unsafe fn(kc: usize, a: *const u16, b: *const u16, acc: *mut f32);

/// A resolved microkernel: the tier's tile geometry plus its entry point.
/// Obtained from the dispatch table ([`current_kernel`]); never constructed
/// for a tier the CPU cannot run.
pub struct Kernel {
    /// Which tier this is.
    pub tier: Tier,
    /// Microkernel tile width (columns of C per register tile) — the
    /// B-panel interleave width.
    pub nr: usize,
    /// Columns of C per outer GEMM strip: a multiple of `nr` keeping
    /// `KC×nc` packed B around 1 MiB (L2-resident).
    pub nc: usize,
    ukr: MicroKernelFn,
    ukr_bf16: MicroKernelBf16Fn,
    /// Whether `ukr_bf16` consumes pair-interleaved panels (the native
    /// `vdpbf16ps` kernel; see the module docs' native-dot section).
    paired_bf16: bool,
}

impl Kernel {
    /// Run the microkernel over packed panels: `acc[r·nr+j] += Σ_kk …` is
    /// **overwritten** (not accumulated) with the `MR×nr` tile product.
    #[inline]
    pub(crate) fn run(&self, kc: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]) {
        assert_eq!(a_panel.len(), kc * MR);
        assert_eq!(b_panel.len(), kc * self.nr);
        assert!(acc.len() >= MR * self.nr);
        // SAFETY: panel/acc bounds checked above; the function pointer is
        // only ever one whose ISA was verified available (`kernel_for`
        // guards the table, `with_tier`/env parsing assert availability).
        unsafe { (self.ukr)(kc, a_panel.as_ptr(), b_panel.as_ptr(), acc.as_mut_ptr()) }
    }

    /// Run the bf16-panel microkernel (f32 accumulate): same contract as
    /// [`Kernel::run`] with `u16` bf16 bit-pattern panels. A paired
    /// kernel ([`Kernel::bf16_paired`]) reads pair-interleaved panels of
    /// [`Kernel::bf16_panel_rows`] rows instead of the linear `kc`.
    #[inline]
    pub(crate) fn run_bf16(&self, kc: usize, a_panel: &[u16], b_panel: &[u16], acc: &mut [f32]) {
        let rows = self.bf16_panel_rows(kc);
        assert_eq!(a_panel.len(), rows * MR);
        assert_eq!(b_panel.len(), rows * self.nr);
        assert!(acc.len() >= MR * self.nr);
        // SAFETY: as in `run` — bounds checked, ISA availability
        // guaranteed by the dispatch table.
        unsafe { (self.ukr_bf16)(kc, a_panel.as_ptr(), b_panel.as_ptr(), acc.as_mut_ptr()) }
    }

    /// Whether the bf16 microkernel consumes pair-interleaved panels
    /// (prepared with [`pair_interleave_bf16_panels`]).
    pub(crate) fn bf16_paired(&self) -> bool {
        self.paired_bf16
    }

    /// Panel rows the bf16 microkernel reads for a logical depth `kc`:
    /// `kc` for the widen kernels, `kc` rounded up to even (zero-padded
    /// tail row) for the paired native-dot kernel.
    pub(crate) fn bf16_panel_rows(&self, kc: usize) -> usize {
        if self.paired_bf16 {
            kc.next_multiple_of(2)
        } else {
            kc
        }
    }
}

/// Pair-interleave bf16 panels for the native-dot kernels: `src` holds
/// panels of `kc` rows × `w` interleaved elements (the standard pack
/// layout, `w` = [`MR`] for A panels or the tier `nr` for B panels);
/// `dst` receives the same panels with consecutive row pairs merged —
/// `dst[t·2w + 2j + s] = src[(2t+s)·w + j]` — zero-padded to `rows`
/// logical rows (`rows` is the kernel's padded depth: `next_even(kc)`
/// for `vdpbf16ps`, a multiple of the tile depth for AMX; `rows ≥ kc`
/// and even). `dst` must hold `panels · rows · w` elements.
pub(crate) fn pair_interleave_bf16_panels(
    src: &[u16],
    dst: &mut [u16],
    kc: usize,
    w: usize,
    rows: usize,
) {
    debug_assert!(rows >= kc && rows.is_multiple_of(2));
    let panels = src.len() / (kc * w);
    debug_assert_eq!(src.len(), panels * kc * w);
    debug_assert_eq!(dst.len(), panels * rows * w);
    for (s, d) in src.chunks_exact(kc * w).zip(dst.chunks_exact_mut(rows * w)) {
        for t in 0..kc / 2 {
            let r0 = &s[2 * t * w..][..w];
            let r1 = &s[(2 * t + 1) * w..][..w];
            let out = &mut d[2 * t * w..][..2 * w];
            for j in 0..w {
                out[2 * j] = r0[j];
                out[2 * j + 1] = r1[j];
            }
        }
        if kc % 2 == 1 {
            let r0 = &s[(kc - 1) * w..][..w];
            let out = &mut d[(kc - 1) * w..][..2 * w];
            for j in 0..w {
                out[2 * j] = r0[j];
                out[2 * j + 1] = 0;
            }
        }
        d[kc.next_multiple_of(2) * w..].fill(0);
    }
}

/// Whether `tier` runs bf16 panels through native dot-product hardware
/// on this CPU — the `vdpbf16ps` vector kernel or, above it, the AMX
/// tile unit (`tdpbf16ps`). Native paths accumulate each input pair (or
/// 32-deep tile group) before joining the f32 chain, so their results
/// are tolerance-banded against the widen kernels rather than
/// bit-identical. Attribution for probes, banners, bench records and
/// test bands.
pub fn bf16_dot_native(tier: Tier) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        tier == Tier::Avx512 && (vdpbf16_available() || crate::amx::bf16_ready())
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = tier;
        false
    }
}

#[cfg(target_arch = "x86_64")]
fn vdpbf16_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512bw")
        && std::arch::is_x86_feature_detected!("avx512bf16")
}

/// Short name of the hardware path `tier`'s bf16 kernel takes on this
/// CPU: the AMX tile unit (`tdpbf16ps`, engaged above the avx512 tier),
/// the `vdpbf16ps` vector dot product, or register widening over the
/// f32 FMA pipe. For probes, banners and bench attributions.
pub fn bf16_engine(tier: Tier) -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if tier == Tier::Avx512 {
            if crate::amx::bf16_ready() {
                return "amx";
            }
            if vdpbf16_available() {
                return "vdpbf16ps";
            }
        }
    }
    let _ = tier;
    "widen"
}

static SCALAR_KERNEL: Kernel = Kernel {
    tier: Tier::Scalar,
    nr: NR_SCALAR,
    nc: 1024,
    ukr: ukr_scalar,
    ukr_bf16: ukr_scalar_bf16,
    paired_bf16: false,
};

#[cfg(target_arch = "x86_64")]
static AVX2_KERNEL: Kernel = Kernel {
    tier: Tier::Avx2,
    nr: NR_AVX2,
    nc: 1024,
    ukr: ukr_avx2,
    ukr_bf16: ukr_avx2_bf16,
    paired_bf16: false,
};

#[cfg(target_arch = "x86_64")]
static AVX512_KERNEL: Kernel = Kernel {
    tier: Tier::Avx512,
    nr: NR_AVX512,
    nc: 1008, // 21 × NR — keeps strips NR-aligned, ≈1 MiB packed B
    ukr: ukr_avx512,
    ukr_bf16: ukr_avx512_bf16,
    paired_bf16: false,
};

/// The avx512 row with the native `vdpbf16ps` bf16 kernel — selected in
/// place of [`AVX512_KERNEL`] when the CPU has AVX512-BF16. Same f32
/// entry and blocking; only the bf16 path differs.
#[cfg(target_arch = "x86_64")]
static AVX512_BFDOT_KERNEL: Kernel = Kernel {
    tier: Tier::Avx512,
    nr: NR_AVX512,
    nc: 1008,
    ukr: ukr_avx512,
    ukr_bf16: ukr_avx512_bfdot,
    paired_bf16: true,
};

/// The dispatch table row for `tier`.
///
/// # Panics
/// Panics if the CPU cannot run `tier` (callers gate on
/// [`Tier::is_available`]; the env/`with_tier` paths check before ever
/// naming a tier).
pub(crate) fn kernel_for(tier: Tier) -> &'static Kernel {
    assert!(
        tier.is_available(),
        "kernel tier `{}` is not available on this CPU",
        tier.name()
    );
    match tier {
        Tier::Scalar => &SCALAR_KERNEL,
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 => &AVX2_KERNEL,
        #[cfg(target_arch = "x86_64")]
        Tier::Avx512 => {
            if bf16_dot_native(Tier::Avx512) {
                &AVX512_BFDOT_KERNEL
            } else {
                &AVX512_KERNEL
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar tier on non-x86_64"),
    }
}

/// Best tier this CPU supports.
pub fn best_available_tier() -> Tier {
    ALL_TIERS
        .into_iter()
        .rev()
        .find(|t| t.is_available())
        .unwrap_or(Tier::Scalar)
}

/// Tiers this CPU supports, ascending.
pub fn available_tiers() -> Vec<Tier> {
    ALL_TIERS.into_iter().filter(|t| t.is_available()).collect()
}

/// The process-wide default tier: `GSGCN_KERNEL` if set, else the best
/// available. Resolved once and cached.
///
/// # Panics
/// First call panics on an unknown `GSGCN_KERNEL` value or a forced tier
/// the CPU lacks — a forced-tier CI run must never silently fall back.
pub fn default_tier() -> Tier {
    static DEFAULT: OnceLock<Tier> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("GSGCN_KERNEL") {
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("auto") => {
            let tier = Tier::parse(&v).unwrap_or_else(|| {
                panic!("GSGCN_KERNEL={v:?} — expected scalar, avx2, avx512 or auto")
            });
            assert!(
                tier.is_available(),
                "GSGCN_KERNEL={v:?} but this CPU does not support the `{}` tier",
                tier.name()
            );
            tier
        }
        _ => best_available_tier(),
    })
}

thread_local! {
    /// Per-thread tier override (see [`with_tier`]).
    static FORCED: Cell<Option<Tier>> = const { Cell::new(None) };
}

/// The tier the next GEMM issued from this thread will dispatch to.
pub fn selected_tier() -> Tier {
    FORCED.get().unwrap_or_else(default_tier)
}

/// Run `f` with GEMMs issued **from this thread** dispatching to `tier`.
///
/// The override is thread-local and restored on exit (including unwind).
/// It must wrap the GEMM *call*: the driver resolves the kernel on its
/// calling thread and hands it to its parallel tasks, so worker threads
/// inherit the choice, but a `pool.install` boundary outside `with_tier`
/// would not.
///
/// # Panics
/// Panics if the CPU cannot run `tier`.
pub fn with_tier<R>(tier: Tier, f: impl FnOnce() -> R) -> R {
    assert!(
        tier.is_available(),
        "kernel tier `{}` is not available on this CPU",
        tier.name()
    );
    struct Restore(Option<Tier>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED.set(self.0);
        }
    }
    let _restore = Restore(FORCED.replace(Some(tier)));
    f()
}

/// The kernel the current thread's selection resolves to.
pub(crate) fn current_kernel() -> &'static Kernel {
    kernel_for(selected_tier())
}

// ---------------------------------------------------------------------------
// Scalar tier — virtual-vector form, autovectorised
// ---------------------------------------------------------------------------

/// f32 lanes per virtual vector (one AVX2 `ymm`; wider targets fuse
/// pairs). The kernel is written against fixed-width lane arrays so the
/// vectorizer's only option is the contiguous lane dimension.
const LANES: usize = 8;
/// Virtual vectors per scalar-tier tile row.
const NV: usize = NR_SCALAR / LANES;

/// A virtual SIMD vector: every operation on it is a fixed-trip lane loop
/// that LLVM collapses to one packed instruction.
#[derive(Clone, Copy)]
struct V([f32; LANES]);

/// `acc += a · b` per lane (one packed FMA).
#[inline(always)]
fn vfma(acc: &mut V, a: f32, b: V) {
    for l in 0..LANES {
        acc.0[l] = b.0[l].mul_add(a, acc.0[l]);
    }
}

/// Statically unroll a block over `R = 0..8`. The microkernel's row loop
/// must not exist as a loop: LLVM's vectorizer otherwise picks the row
/// dimension (stride `NR`) and emits gather/scatter code an order of
/// magnitude slower than the contiguous-lane form.
// `unroll_mr!` emits exactly 8 row bodies; growing MR without extending
// the macro would silently zero the extra tile rows (shrinking it fails
// to compile on its own).
const _: () = assert!(MR == 8, "unroll_mr! must list exactly MR rows");

macro_rules! unroll_mr {
    ($r:ident, $body:block) => {{
        const $r: usize = 0;
        $body
    }
    {
        const $r: usize = 1;
        $body
    }
    {
        const $r: usize = 2;
        $body
    }
    {
        const $r: usize = 3;
        $body
    }
    {
        const $r: usize = 4;
        $body
    }
    {
        const $r: usize = 5;
        $body
    }
    {
        const $r: usize = 6;
        $body
    }
    {
        const $r: usize = 7;
        $body
    }};
}

/// The portable MR×32 tile kernel (see module docs for the layout).
///
/// # Safety
/// `a` must be valid for `kc·MR` reads, `b` for `kc·NR_SCALAR` reads and
/// `acc` for `MR·NR_SCALAR` writes ([`Kernel::run`] checks this).
unsafe fn ukr_scalar(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    let a_panel = std::slice::from_raw_parts(a, kc * MR);
    let b_panel = std::slice::from_raw_parts(b, kc * NR_SCALAR);
    let acc = std::slice::from_raw_parts_mut(acc, MR * NR_SCALAR);
    let mut tile = [[V([0.0; LANES]); NV]; MR];
    for kk in 0..kc {
        let a_k: &[f32; MR] = a_panel[kk * MR..kk * MR + MR].try_into().unwrap();
        let b_k = &b_panel[kk * NR_SCALAR..kk * NR_SCALAR + NR_SCALAR];
        let mut bv = [V([0.0; LANES]); NV];
        for (v, bvv) in bv.iter_mut().enumerate() {
            bvv.0.copy_from_slice(&b_k[v * LANES..(v + 1) * LANES]);
        }
        unroll_mr!(R, {
            let ar = a_k[R];
            for v in 0..NV {
                vfma(&mut tile[R][v], ar, bv[v]);
            }
        });
    }
    for (r, row) in tile.iter().enumerate() {
        for (v, vec) in row.iter().enumerate() {
            acc[r * NR_SCALAR + v * LANES..r * NR_SCALAR + (v + 1) * LANES].copy_from_slice(&vec.0);
        }
    }
}

/// Widen one bf16 bit pattern to f32 (a 16-bit shift — exact).
#[inline(always)]
fn widen_bf16(u: u16) -> f32 {
    f32::from_bits((u as u32) << 16)
}

/// The portable bf16-panel tile kernel: [`ukr_scalar`] with a widening
/// load. The widen is a shift the vectorizer folds into the lane loads,
/// so the loop body stays packed-FMA-shaped.
///
/// # Safety
/// Same panel bounds as [`ukr_scalar`] ([`Kernel::run_bf16`] checks).
unsafe fn ukr_scalar_bf16(kc: usize, a: *const u16, b: *const u16, acc: *mut f32) {
    let a_panel = std::slice::from_raw_parts(a, kc * MR);
    let b_panel = std::slice::from_raw_parts(b, kc * NR_SCALAR);
    let acc = std::slice::from_raw_parts_mut(acc, MR * NR_SCALAR);
    let mut tile = [[V([0.0; LANES]); NV]; MR];
    for kk in 0..kc {
        let a_k: &[u16; MR] = a_panel[kk * MR..kk * MR + MR].try_into().unwrap();
        let b_k = &b_panel[kk * NR_SCALAR..kk * NR_SCALAR + NR_SCALAR];
        let mut bv = [V([0.0; LANES]); NV];
        for (v, bvv) in bv.iter_mut().enumerate() {
            for l in 0..LANES {
                bvv.0[l] = widen_bf16(b_k[v * LANES + l]);
            }
        }
        unroll_mr!(R, {
            let ar = widen_bf16(a_k[R]);
            for v in 0..NV {
                vfma(&mut tile[R][v], ar, bv[v]);
            }
        });
    }
    for (r, row) in tile.iter().enumerate() {
        for (v, vec) in row.iter().enumerate() {
            acc[r * NR_SCALAR + v * LANES..r * NR_SCALAR + (v + 1) * LANES].copy_from_slice(&vec.0);
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2+FMA tier
// ---------------------------------------------------------------------------

/// The AVX2 MR×16 tile kernel, computed as two 4-row half-tiles.
///
/// A full 8×16 tile needs 16 `ymm` accumulators — the whole register file,
/// so something spills every iteration. Splitting into 4×16 halves uses
/// 8 accumulators + 2 B vectors + 1 broadcast = 11 of 16 registers, and
/// per `kk` issues 8 FMAs against 2 loads + 4 broadcasts — FMA-bound. The
/// B panel row (one cache line) is re-read from L1 by the second half.
///
/// The `kk` loop is unrolled by two: with only 8 independent FMA chains
/// per half-tile, a single-step loop leaves the FMA pipes under-occupied
/// (8 chains × 4-cycle latency vs 2 ports × 4 = 8 in flight is exactly
/// break-even, so any loop overhead stalls the chain). Two sequential
/// `kk` steps per iteration halve the loop-carried overhead without
/// changing the per-element FMA order — each accumulator still sees the
/// same chain, so results stay bit-identical to the rolled form.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available and the panel bounds of
/// [`Kernel::run`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn ukr_avx2(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    use std::arch::x86_64::*;
    for half in 0..2 {
        let mut c: [[__m256; 2]; 4] = [[_mm256_setzero_ps(); 2]; 4];
        macro_rules! step {
            ($kk:expr) => {{
                let kk = $kk;
                _mm_prefetch::<_MM_HINT_T0>(a.add((kk + A_PF_DIST) * MR) as *const i8);
                let bp = b.add(kk * NR_AVX2);
                let b0 = _mm256_loadu_ps(bp);
                let b1 = _mm256_loadu_ps(bp.add(8));
                let ap = a.add(kk * MR + half * 4);
                for (r, cr) in c.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*ap.add(r));
                    cr[0] = _mm256_fmadd_ps(av, b0, cr[0]);
                    cr[1] = _mm256_fmadd_ps(av, b1, cr[1]);
                }
            }};
        }
        let mut kk = 0;
        while kk + 2 <= kc {
            step!(kk);
            step!(kk + 1);
            kk += 2;
        }
        if kk < kc {
            step!(kk);
        }
        for (r, cr) in c.iter().enumerate() {
            let out = acc.add((half * 4 + r) * NR_AVX2);
            _mm256_storeu_ps(out, cr[0]);
            _mm256_storeu_ps(out.add(8), cr[1]);
        }
    }
}

/// The AVX2 bf16-panel MR×16 tile kernel: [`ukr_avx2`]'s geometry with
/// widening B loads (`vpmovzxwd` + `vpslld 16` — two cheap shuffles/
/// shifts per 8 elements) and a scalar shift-widen on the A broadcast.
/// Accumulators are f32 `ymm`; the FMA chain per C element is identical
/// to the f32 kernel's, so bf16 tiers also agree bit-for-bit with each
/// other on the same bf16 panels.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available and the panel bounds of
/// [`Kernel::run_bf16`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn ukr_avx2_bf16(kc: usize, a: *const u16, b: *const u16, acc: *mut f32) {
    use std::arch::x86_64::*;
    for half in 0..2 {
        let mut c: [[__m256; 2]; 4] = [[_mm256_setzero_ps(); 2]; 4];
        for kk in 0..kc {
            // bf16 A rows are 16 B, so the same row distance covers half
            // the bytes — still ≥ one line ahead of the FMA chain.
            _mm_prefetch::<_MM_HINT_T0>(a.add((kk + A_PF_DIST) * MR) as *const i8);
            let bp = b.add(kk * NR_AVX2);
            let b0 = _mm256_castsi256_ps(_mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(
                _mm_loadu_si128(bp as *const __m128i),
            )));
            let b1 = _mm256_castsi256_ps(_mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(
                _mm_loadu_si128(bp.add(8) as *const __m128i),
            )));
            let ap = a.add(kk * MR + half * 4);
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm256_set1_ps(widen_bf16(*ap.add(r)));
                cr[0] = _mm256_fmadd_ps(av, b0, cr[0]);
                cr[1] = _mm256_fmadd_ps(av, b1, cr[1]);
            }
        }
        for (r, cr) in c.iter().enumerate() {
            let out = acc.add((half * 4 + r) * NR_AVX2);
            _mm256_storeu_ps(out, cr[0]);
            _mm256_storeu_ps(out.add(8), cr[1]);
        }
    }
}

// ---------------------------------------------------------------------------
// AVX-512F tier
// ---------------------------------------------------------------------------

/// The AVX-512 MR×48 tile kernel: 8 rows × 3 `zmm` accumulators (24 of 32
/// registers) + 3 B vectors + 1 broadcast = 28 — no spills, and per `kk`
/// the 24 FMAs outnumber the 3 loads + 8 broadcasts, so the two FMA ports
/// are the bottleneck rather than the load ports.
///
/// # Safety
/// Caller must ensure AVX-512F is available and the panel bounds of
/// [`Kernel::run`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn ukr_avx512(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    use std::arch::x86_64::*;
    let mut c: [[__m512; 3]; MR] = [[_mm512_setzero_ps(); 3]; MR];
    for kk in 0..kc {
        _mm_prefetch::<_MM_HINT_T0>(a.add((kk + A_PF_DIST) * MR) as *const i8);
        let bp = b.add(kk * NR_AVX512);
        let b0 = _mm512_loadu_ps(bp);
        let b1 = _mm512_loadu_ps(bp.add(16));
        let b2 = _mm512_loadu_ps(bp.add(32));
        let ap = a.add(kk * MR);
        for (r, cr) in c.iter_mut().enumerate() {
            let av = _mm512_set1_ps(*ap.add(r));
            cr[0] = _mm512_fmadd_ps(av, b0, cr[0]);
            cr[1] = _mm512_fmadd_ps(av, b1, cr[1]);
            cr[2] = _mm512_fmadd_ps(av, b2, cr[2]);
        }
    }
    for (r, cr) in c.iter().enumerate() {
        let out = acc.add(r * NR_AVX512);
        _mm512_storeu_ps(out, cr[0]);
        _mm512_storeu_ps(out.add(16), cr[1]);
        _mm512_storeu_ps(out.add(32), cr[2]);
    }
}

/// The AVX-512 bf16-panel MR×48 tile kernel: [`ukr_avx512`]'s geometry
/// with widening B loads — each 16-element group is one `vpmovzxwd`
/// (`_mm512_cvtepu16_epi32`, AVX-512F) plus one `_mm512_slli_epi32` by
/// 16 — and a scalar shift-widen on the A broadcast. 24 f32 `zmm`
/// accumulators as in the f32 kernel; the extra 6 widen uops per `kk`
/// ride the shift port while the 24 FMAs keep both FMA ports saturated.
///
/// # Safety
/// Caller must ensure AVX-512F is available and the panel bounds of
/// [`Kernel::run_bf16`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn ukr_avx512_bf16(kc: usize, a: *const u16, b: *const u16, acc: *mut f32) {
    use std::arch::x86_64::*;
    let mut c: [[__m512; 3]; MR] = [[_mm512_setzero_ps(); 3]; MR];
    for kk in 0..kc {
        _mm_prefetch::<_MM_HINT_T0>(a.add((kk + A_PF_DIST) * MR) as *const i8);
        let bp = b.add(kk * NR_AVX512);
        let b0 = _mm512_castsi512_ps(_mm512_slli_epi32::<16>(_mm512_cvtepu16_epi32(
            _mm256_loadu_si256(bp as *const __m256i),
        )));
        let b1 = _mm512_castsi512_ps(_mm512_slli_epi32::<16>(_mm512_cvtepu16_epi32(
            _mm256_loadu_si256(bp.add(16) as *const __m256i),
        )));
        let b2 = _mm512_castsi512_ps(_mm512_slli_epi32::<16>(_mm512_cvtepu16_epi32(
            _mm256_loadu_si256(bp.add(32) as *const __m256i),
        )));
        let ap = a.add(kk * MR);
        for (r, cr) in c.iter_mut().enumerate() {
            let av = _mm512_set1_ps(widen_bf16(*ap.add(r)));
            cr[0] = _mm512_fmadd_ps(av, b0, cr[0]);
            cr[1] = _mm512_fmadd_ps(av, b1, cr[1]);
            cr[2] = _mm512_fmadd_ps(av, b2, cr[2]);
        }
    }
    for (r, cr) in c.iter().enumerate() {
        let out = acc.add(r * NR_AVX512);
        _mm512_storeu_ps(out, cr[0]);
        _mm512_storeu_ps(out.add(16), cr[1]);
        _mm512_storeu_ps(out.add(32), cr[2]);
    }
}

/// The AVX512-BF16 MR×48 tile kernel: `vdpbf16ps` over pair-interleaved
/// panels ([`pair_interleave_bf16_panels`]). Per pair-step the 24 dot
/// instructions retire **two** k-steps of the whole tile — half the
/// FMA-port issues of the widen kernel — while the A pair broadcast is a
/// single 32-bit memory broadcast (the pair sits adjacent in the panel)
/// and the three B vectors are plain loads (the interleave happened at
/// pack time). `vdpbf16ps` widens each bf16 operand exactly, so the pair
/// products are exact in f32; only the pairwise add order differs from
/// the widen kernels.
///
/// # Safety
/// Caller must ensure AVX512F/BW/BF16 are available and the **paired**
/// panel bounds of [`Kernel::run_bf16`] (`next_even(kc)` rows).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512bf16")]
unsafe fn ukr_avx512_bfdot(kc: usize, a: *const u16, b: *const u16, acc: *mut f32) {
    use std::arch::x86_64::*;
    let npairs = kc.div_ceil(2);
    let mut c: [[__m512; 3]; MR] = [[_mm512_setzero_ps(); 3]; MR];
    for kk2 in 0..npairs {
        // Pair rows are 2·MR u16 = 32 B; the same lookahead distance in
        // pair rows covers the f32 kernel's byte horizon.
        _mm_prefetch::<_MM_HINT_T0>(a.add((kk2 + A_PF_DIST) * 2 * MR) as *const i8);
        let bp = b.add(kk2 * 2 * NR_AVX512);
        let b0: __m512bh = std::mem::transmute(_mm512_loadu_si512(bp as *const __m512i));
        let b1: __m512bh = std::mem::transmute(_mm512_loadu_si512(bp.add(32) as *const __m512i));
        let b2: __m512bh = std::mem::transmute(_mm512_loadu_si512(bp.add(64) as *const __m512i));
        let ap = (a as *const i32).add(kk2 * MR);
        for (r, cr) in c.iter_mut().enumerate() {
            let av: __m512bh = std::mem::transmute(_mm512_set1_epi32(ap.add(r).read_unaligned()));
            cr[0] = _mm512_dpbf16_ps(cr[0], av, b0);
            cr[1] = _mm512_dpbf16_ps(cr[1], av, b1);
            cr[2] = _mm512_dpbf16_ps(cr[2], av, b2);
        }
    }
    for (r, cr) in c.iter().enumerate() {
        let out = acc.add(r * NR_AVX512);
        _mm512_storeu_ps(out, cr[0]);
        _mm512_storeu_ps(out.add(16), cr[1]);
        _mm512_storeu_ps(out.add(32), cr[2]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference tile product for arbitrary nr.
    fn tile_reference(kc: usize, nr: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f64; MR * nr];
        for kk in 0..kc {
            for r in 0..MR {
                for j in 0..nr {
                    out[r * nr + j] += a[kk * MR + r] as f64 * b[kk * nr + j] as f64;
                }
            }
        }
        out.into_iter().map(|x| x as f32).collect()
    }

    #[test]
    fn every_available_tier_tile_matches_reference() {
        for tier in available_tiers() {
            let kern = kernel_for(tier);
            for kc in [1usize, 3, 17, 64] {
                let a: Vec<f32> = (0..kc * MR)
                    .map(|i| ((i % 23) as f32) * 0.25 - 2.0)
                    .collect();
                let b: Vec<f32> = (0..kc * kern.nr)
                    .map(|i| ((i % 19) as f32) * 0.125 - 1.0)
                    .collect();
                let mut acc = vec![f32::NAN; MR * kern.nr];
                kern.run(kc, &a, &b, &mut acc);
                let r = tile_reference(kc, kern.nr, &a, &b);
                for (i, (&got, &want)) in acc.iter().zip(&r).enumerate() {
                    assert!(
                        (got - want).abs() < 1e-3,
                        "tier {} kc {kc} elem {i}: {got} vs {want}",
                        tier.name()
                    );
                }
            }
        }
    }

    /// Every tier's bf16 kernel must agree with the reference product of
    /// the *widened* panels (widening is exact, so the only slack is f32
    /// accumulation — for the native-dot kernel, pairwise f32
    /// accumulation). Paired kernels get their panels pair-interleaved
    /// the way the driver would.
    #[test]
    fn every_available_tier_bf16_tile_matches_reference() {
        use crate::bf16::Bf16;
        for tier in available_tiers() {
            let kern = kernel_for(tier);
            for kc in [1usize, 3, 17, 64] {
                let a: Vec<u16> = (0..kc * MR)
                    .map(|i| Bf16::from_f32(((i % 23) as f32) * 0.25 - 2.0).0)
                    .collect();
                let b: Vec<u16> = (0..kc * kern.nr)
                    .map(|i| Bf16::from_f32(((i % 19) as f32) * 0.125 - 1.0).0)
                    .collect();
                let mut acc = vec![f32::NAN; MR * kern.nr];
                if kern.bf16_paired() {
                    let rows = kern.bf16_panel_rows(kc);
                    let mut ap = vec![0u16; rows * MR];
                    let mut bp = vec![0u16; rows * kern.nr];
                    pair_interleave_bf16_panels(&a, &mut ap, kc, MR, rows);
                    pair_interleave_bf16_panels(&b, &mut bp, kc, kern.nr, rows);
                    kern.run_bf16(kc, &ap, &bp, &mut acc);
                } else {
                    kern.run_bf16(kc, &a, &b, &mut acc);
                }
                let aw: Vec<f32> = a.iter().map(|&u| Bf16(u).to_f32()).collect();
                let bw: Vec<f32> = b.iter().map(|&u| Bf16(u).to_f32()).collect();
                let r = tile_reference(kc, kern.nr, &aw, &bw);
                for (i, (&got, &want)) in acc.iter().zip(&r).enumerate() {
                    assert!(
                        (got - want).abs() < 1e-3,
                        "tier {} kc {kc} elem {i}: {got} vs {want}",
                        tier.name()
                    );
                }
            }
        }
    }

    /// The pair interleave places `(kk, kk+1)` element pairs adjacently
    /// per interleaved column and zero-pads an odd tail row.
    #[test]
    fn pair_interleave_layout_and_padding() {
        let w = 4usize;
        for kc in [1usize, 2, 5, 6] {
            let panels = 3usize;
            let src: Vec<u16> = (0..panels * kc * w).map(|i| i as u16 + 1).collect();
            let rows = kc.next_multiple_of(2);
            let mut dst = vec![0xFFFFu16; panels * rows * w];
            pair_interleave_bf16_panels(&src, &mut dst, kc, w, rows);
            for p in 0..panels {
                for kk in 0..rows {
                    for j in 0..w {
                        let got = dst[p * rows * w + (kk / 2) * 2 * w + 2 * j + (kk % 2)];
                        let want = if kk < kc {
                            src[p * kc * w + kk * w + j]
                        } else {
                            0
                        };
                        assert_eq!(got, want, "panel {p} kk {kk} j {j} (kc {kc})");
                    }
                }
            }
        }
    }

    #[test]
    fn every_tier_lists_both_precisions() {
        for t in ALL_TIERS {
            assert_eq!(t.precisions(), &["f32", "bf16"]);
        }
    }

    #[test]
    fn scalar_always_available_and_selected_tier_is_available() {
        assert!(Tier::Scalar.is_available());
        assert!(selected_tier().is_available());
        assert!(available_tiers().contains(&best_available_tier()));
    }

    #[test]
    fn parse_round_trips_names() {
        for t in ALL_TIERS {
            assert_eq!(Tier::parse(t.name()), Some(t));
            assert_eq!(Tier::parse(&t.name().to_uppercase()), Some(t));
        }
        assert_eq!(Tier::parse("auto"), None);
        assert_eq!(Tier::parse("neon"), None);
    }

    #[test]
    fn with_tier_overrides_and_restores() {
        let before = selected_tier();
        with_tier(Tier::Scalar, || {
            assert_eq!(selected_tier(), Tier::Scalar);
        });
        assert_eq!(selected_tier(), before);
    }

    #[test]
    fn with_tier_restores_on_panic() {
        let before = selected_tier();
        let result = std::panic::catch_unwind(|| {
            with_tier(Tier::Scalar, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(selected_tier(), before);
    }

    #[test]
    fn nc_is_a_multiple_of_nr_for_every_tier() {
        for tier in available_tiers() {
            let k = kernel_for(tier);
            assert_eq!(k.nc % k.nr, 0, "tier {}", tier.name());
            assert!(k.nr <= NR_MAX);
        }
    }
}
