//! Dense linear-algebra substrate.
//!
//! The paper implements "weight application" — the dense half of GCN
//! training — with Intel MKL's `cblas_dgemm` (Sec. V-A). This crate is the
//! from-scratch replacement: a row-major `f32` matrix type ([`DMatrix`])
//! plus a parallel, cache-blocked GEMM ([`gemm`]) with the three transpose
//! variants GCN training needs (`A·B`, `Aᵀ·B`, `A·Bᵀ`), and the elementwise
//! kernels (ReLU, sigmoid, softmax, concat/split, dropout) used by the
//! neural-network crate.
//!
//! Parallelism runs on whichever rayon pool is current, so core-count
//! sweeps (Fig. 3) simply `install` a local pool around training calls.
//!
//! # Example
//!
//! ```
//! use gsgcn_tensor::{DMatrix, gemm};
//!
//! let a = DMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
//! let b = DMatrix::from_fn(3, 2, |i, j| if i == j { 1.0 } else { 0.0 });
//! let c = gemm::matmul(&a, &b);
//! assert_eq!(c.get(1, 0), 3.0);
//! ```

pub mod alloc;
pub mod amx;
pub mod bf16;
pub mod gemm;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod precision;
pub mod scratch;
pub mod ukernel;
pub mod view;

pub use bf16::{Bf16, Bf16MatRef};
pub use matrix::DMatrix;
pub use precision::Precision;
pub use view::{MatMut, MatRef};
