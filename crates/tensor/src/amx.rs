//! AMX-BF16 tile kernel for the bf16 GEMM path.
//!
//! Sapphire-Rapids-class Xeons expose a matrix unit (AMX) whose
//! `tdpbf16ps` instruction multiplies a 16×32 bf16 tile by a 16×32 bf16
//! tile (VNNI pair layout) into a 16×16 f32 accumulator tile — 8192 MACs
//! per instruction, an order of magnitude past the AVX-512 FMA peak and
//! the only unit on these parts where bf16 storage buys *compute*
//! throughput rather than just bandwidth (`vdpbf16ps` issues on a single
//! port, so its 2-per-issue dot product only matches the two-port f32 FMA
//! peak).
//!
//! The stable toolchain has no AMX intrinsics, so the tile configuration
//! and the microkernel are inline assembly (the mnemonics are plain
//! `asm!`; no unstable feature gates). Three pieces of process state are
//! involved:
//!
//! * **Permission** — tile data is an XSAVE component the kernel hands
//!   out per process via `arch_prctl(ARCH_REQ_XCOMP_PERM, XTILEDATA)`;
//!   requested once, lazily, and the result cached ([`bf16_ready`]).
//! * **Tile palette** — `ldtilecfg` is per thread; every rayon worker
//!   that runs the microkernel calls [`ensure_thread_configured`] first.
//!   All eight tiles are configured 16 rows × 64 bytes.
//! * **Kill switch** — `GSGCN_AMX=0` disables the unit (falls back to
//!   the AVX-512 bf16 kernel), for A/B measurement and for debugging.
//!
//! The microkernel ([`tile_kernel_32x32`]) computes a 32×32 f32 block of
//! `C += A·B` from a row-major bf16 A block and VNNI pair-interleaved
//! bf16 B panels, accumulating entirely in tile registers across the
//! whole `kc` depth. `tdpbf16ps` sums each 32-product group in its own
//! order, so results are tolerance-banded against the widen kernels —
//! the same contract as the `vdpbf16ps` kernel (`bf16_dot_native`).

/// Rows of C per tile-kernel call (two 16-row tiles).
pub const TILE_M: usize = 32;
/// Columns of C per tile-kernel call (two 16-column tiles).
pub const TILE_N: usize = 32;
/// Reduction depth per `tdpbf16ps` step; packed panels are zero-padded
/// to a multiple of this.
pub const TILE_K: usize = 32;

/// Whether the AMX-BF16 unit is present, permitted and not disabled.
///
/// First call performs CPUID feature checks and the one-time
/// `arch_prctl` tile-data permission request; the verdict is cached.
pub fn bf16_ready() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static READY: OnceLock<bool> = OnceLock::new();
        *READY.get_or_init(|| {
            if matches!(
                std::env::var("GSGCN_AMX").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            ) {
                return false;
            }
            cpu_has_amx_bf16() && request_tiledata_permission()
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
fn cpu_has_amx_bf16() -> bool {
    // CPUID leaf 7 subleaf 0: EDX bit 24 = AMX-TILE, bit 22 = AMX-BF16.
    // (`is_x86_feature_detected!("amx-bf16")` is still unstable, so read
    // the leaf directly.)
    let max_leaf = std::arch::x86_64::__cpuid(0).eax;
    if max_leaf < 7 {
        return false;
    }
    let leaf7 = std::arch::x86_64::__cpuid_count(7, 0);
    leaf7.edx & (1 << 24) != 0 && leaf7.edx & (1 << 22) != 0
}

/// Ask the kernel for the XTILEDATA XSAVE component. Without this, the
/// first tile instruction delivers SIGILL; with it, tile state becomes
/// part of this process's context like any vector register file.
#[cfg(target_arch = "x86_64")]
fn request_tiledata_permission() -> bool {
    const SYS_ARCH_PRCTL: i64 = 158;
    const ARCH_REQ_XCOMP_PERM: i64 = 0x1023;
    const XFEATURE_XTILEDATA: i64 = 18;
    let ret: i64;
    // SAFETY: plain syscall; arch_prctl with these arguments only flips
    // the per-process XSTATE permission bit and touches no memory.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_ARCH_PRCTL => ret,
            in("rdi") ARCH_REQ_XCOMP_PERM,
            in("rsi") XFEATURE_XTILEDATA,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Load the tile palette on the calling thread if it has not been done
/// yet: all eight tiles 16 rows × 64 bytes (palette 1). Must run on each
/// thread before [`tile_kernel_32x32`]; cheap no-op afterwards.
pub fn ensure_thread_configured() {
    #[cfg(target_arch = "x86_64")]
    {
        use std::cell::Cell;
        thread_local! {
            static CONFIGURED: Cell<bool> = const { Cell::new(false) };
        }
        CONFIGURED.with(|c| {
            if !c.get() {
                // 64-byte tile-configuration block: byte 0 palette id,
                // u16 colsb[i] at 16+2i, u8 rows[i] at 48+i.
                #[repr(C, align(64))]
                struct TileCfg([u8; 64]);
                let mut cfg = TileCfg([0u8; 64]);
                cfg.0[0] = 1;
                for t in 0..8 {
                    cfg.0[16 + 2 * t] = 64;
                    cfg.0[48 + t] = 16;
                }
                // SAFETY: `bf16_ready()` gated callers — the unit exists
                // and the process holds tile-data permission. The config
                // block is a valid palette-1 layout.
                unsafe {
                    std::arch::asm!(
                        "ldtilecfg [{cfg}]",
                        cfg = in(reg) &cfg,
                        options(nostack, preserves_flags),
                    );
                }
                c.set(true);
            }
        });
    }
}

/// `out[32×32] = A[32×kc_pad]·B[kc_pad×32]` over bf16 tiles, f32 out.
///
/// * `kpads` — number of 32-deep reduction steps (`kc_pad / TILE_K`).
/// * `a` — row-major bf16 block, ≥ 32 rows of `lda/2` elements; rows and
///   trailing depth zero-padded by the pack.
/// * `lda` — A row stride in **bytes** (`kc_pad * 2`).
/// * `b0`, `b1` — VNNI pair-interleaved 16-column B panels (`kc_pad/2`
///   rows of 32 bf16 each): columns 0–15 and 16–31 of the output tile.
/// * `out` — 32×32 f32, row-major contiguous, overwritten.
///
/// # Safety
/// Caller must ensure [`bf16_ready`] is true, the calling thread ran
/// [`ensure_thread_configured`], and all pointers cover the extents
/// above.
#[cfg(target_arch = "x86_64")]
pub unsafe fn tile_kernel_32x32(
    kpads: usize,
    a: *const u16,
    lda: usize,
    b0: *const u16,
    b1: *const u16,
    out: *mut f32,
) {
    debug_assert!(kpads > 0);
    let a1 = a.byte_add(16 * lda);
    // Accumulators: tmm0 = C[0..16, 0..16], tmm1 = C[0..16, 16..32],
    // tmm2 = C[16..32, 0..16], tmm3 = C[16..32, 16..32]. Per step the
    // four operand tiles (two of A, two of B) are loaded once and each
    // feeds two of the four products.
    std::arch::asm!(
        "tilezero tmm0",
        "tilezero tmm1",
        "tilezero tmm2",
        "tilezero tmm3",
        "2:",
        "tileloadd tmm4, [{a0} + {lda} * 1]",
        "tileloadd tmm6, [{b0} + {bs} * 1]",
        "tdpbf16ps tmm0, tmm4, tmm6",
        "tileloadd tmm7, [{b1} + {bs} * 1]",
        "tdpbf16ps tmm1, tmm4, tmm7",
        "tileloadd tmm5, [{a1} + {lda} * 1]",
        "tdpbf16ps tmm2, tmm5, tmm6",
        "tdpbf16ps tmm3, tmm5, tmm7",
        // Next 32 of k: 64 bytes along each A row, 16 VNNI rows (64 B
        // each) down the B panels.
        "add {a0}, 64",
        "add {a1}, 64",
        "add {b0}, 1024",
        "add {b1}, 1024",
        "dec {cnt}",
        "jnz 2b",
        // Store the 2×2 tile grid into the contiguous 32×32 block:
        // quadrant starts at +0, +64 B, +2048 B, +2112 B.
        "tilestored [{out} + {ldc} * 1], tmm0",
        "add {out}, 64",
        "tilestored [{out} + {ldc} * 1], tmm1",
        "add {out}, 1984",
        "tilestored [{out} + {ldc} * 1], tmm2",
        "add {out}, 64",
        "tilestored [{out} + {ldc} * 1], tmm3",
        a0 = inout(reg) a => _,
        a1 = inout(reg) a1 => _,
        b0 = inout(reg) b0 => _,
        b1 = inout(reg) b1 => _,
        cnt = inout(reg) kpads => _,
        out = inout(reg) out => _,
        lda = in(reg) lda,
        bs = in(reg) 64usize,
        ldc = in(reg) 128usize,
        options(nostack),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quantise, pack and multiply one 32×32 tile block against a plain
    /// widened reference. Skips (trivially passes) off-AMX hosts.
    #[test]
    fn tile_kernel_matches_widened_reference() {
        if !bf16_ready() {
            eprintln!("amx: unit not available, skipping");
            return;
        }
        ensure_thread_configured();
        let kc = 70usize; // odd non-multiple to exercise the padding
        let kc_pad = kc.next_multiple_of(TILE_K);
        // bf16-exact values so the reference is exact in f32.
        let aq = |i: usize, t: usize| ((i * 7 + t * 3) % 13) as f32 * 0.25 - 1.5;
        let bq = |t: usize, j: usize| ((t * 5 + j) % 11) as f32 * 0.5 - 2.0;
        let mut a = vec![0u16; TILE_M * kc_pad];
        for i in 0..TILE_M {
            for t in 0..kc {
                a[i * kc_pad + t] = crate::bf16::Bf16::from_f32(aq(i, t)).0;
            }
        }
        // VNNI panels: row p of panel holds k = 2p, 2p+1 interleaved.
        let mut b = vec![0u16; kc_pad / 2 * 64];
        for (half, panel) in b.chunks_exact_mut(kc_pad / 2 * 32).enumerate() {
            for t in 0..kc {
                for j in 0..16 {
                    panel[(t / 2) * 32 + 2 * j + (t % 2)] =
                        crate::bf16::Bf16::from_f32(bq(t, half * 16 + j)).0;
                }
            }
        }
        let mut out = vec![0f32; TILE_M * TILE_N];
        unsafe {
            tile_kernel_32x32(
                kc_pad / TILE_K,
                a.as_ptr(),
                kc_pad * 2,
                b.as_ptr(),
                b.as_ptr().add(kc_pad / 2 * 32),
                out.as_mut_ptr(),
            );
        }
        for i in 0..TILE_M {
            for j in 0..TILE_N {
                let want: f32 = (0..kc).map(|t| aq(i, t) * bq(t, j)).sum();
                let got = out[i * TILE_N + j];
                assert!(
                    (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "C[{i}][{j}] = {got}, want {want}"
                );
            }
        }
    }
}
