//! Compare graph-sampling algorithms on connectivity preservation —
//! the Sec. III-C requirements and the paper's future-work item.
//!
//! For each sampler, draws subgraphs from a Reddit-shaped training graph
//! and reports how well they preserve the original graph's structure.
//!
//! ```sh
//! cargo run --release --example sampler_explorer
//! ```

use gsgcn::data::presets;
use gsgcn::graph::stats;
use gsgcn::sampler::alt::{
    ForestFireSampler, RandomWalkSampler, UniformEdgeSampler, UniformNodeSampler,
};
use gsgcn::sampler::dashboard::{DashboardSampler, FrontierConfig};
use gsgcn::sampler::GraphSampler;

fn main() {
    let dataset = presets::reddit_scaled(5);
    let tv = dataset.train_view();
    let g = &*tv.graph;
    let budget = 800;

    println!(
        "training graph: |V|={}, d̄={:.1}, clustering={:.4}, max degree={}\n",
        g.num_vertices(),
        g.avg_degree(),
        stats::clustering_coefficient(g),
        g.max_degree()
    );

    let samplers: Vec<(&str, Box<dyn GraphSampler>)> = vec![
        (
            "frontier (paper)",
            Box::new(DashboardSampler::new(FrontierConfig {
                frontier_size: 100,
                budget,
                ..FrontierConfig::default()
            })),
        ),
        (
            "frontier capped-30",
            Box::new(DashboardSampler::new(FrontierConfig {
                frontier_size: 100,
                budget,
                degree_cap: Some(30),
                ..FrontierConfig::default()
            })),
        ),
        ("uniform node", Box::new(UniformNodeSampler { budget })),
        ("uniform edge", Box::new(UniformEdgeSampler { budget })),
        (
            "random walk",
            Box::new(RandomWalkSampler {
                walkers: 100,
                budget,
                restart_prob: 0.15,
            }),
        ),
        (
            "forest fire",
            Box::new(ForestFireSampler {
                budget,
                burn_prob: 0.7,
            }),
        ),
    ];

    println!(
        "{:<20} {:>8} {:>8} {:>10} {:>12} {:>8}",
        "sampler", "|V_sub|", "d̄_sub", "cluster", "deg-TV-dist", "LCC%"
    );
    for (name, s) in &samplers {
        // Average over a few draws for stability.
        let (mut nv, mut dm, mut cc, mut tv_dist, mut lcc) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let draws = 5;
        for k in 0..draws {
            let sub = s.sample_subgraph(g, 100 + k);
            let ds = stats::degree_stats(&sub.graph);
            nv += sub.num_vertices() as f64;
            dm += ds.mean;
            cc += stats::clustering_coefficient(&sub.graph);
            tv_dist += stats::degree_distribution_distance(g, &sub.graph);
            lcc +=
                stats::largest_component_size(&sub.graph) as f64 / sub.num_vertices().max(1) as f64;
        }
        let k = draws as f64;
        println!(
            "{:<20} {:>8.0} {:>8.1} {:>10.4} {:>12.4} {:>7.1}%",
            name,
            nv / k,
            dm / k,
            cc / k,
            tv_dist / k,
            100.0 * lcc / k
        );
    }

    println!("\nReading the table: the frontier sampler keeps subgraphs connected (high LCC)");
    println!("with a degree shape close to the original (low TV distance) — the Sec. III-C");
    println!("requirements. Uniform-node sampling shatters connectivity; the degree cap");
    println!("trades a little degree fidelity for hub suppression on skewed graphs.");
}
