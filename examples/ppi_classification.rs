//! Multi-label protein-function prediction — the paper's motivating
//! bioinformatics workload (PPI dataset, Table I row 1).
//!
//! Trains the proposed graph-sampling GCN and the GraphSAGE-style
//! baseline on the same data and compares convergence, final F1 and the
//! neighbor-explosion work ratio.
//!
//! ```sh
//! cargo run --release --example ppi_classification
//! ```

use gsgcn::baselines::sage::{SageConfig, SageTrainer};
use gsgcn::core::{GsGcnTrainer, TrainerConfig};
use gsgcn::data::presets;
use gsgcn::nn::adam::AdamHyper;

fn main() {
    let dataset = presets::ppi_scaled(7);
    println!(
        "protein-interaction graph: {} proteins, {} interactions, {} functions to predict",
        dataset.graph.num_vertices(),
        dataset.num_undirected_edges(),
        dataset.num_classes()
    );

    // --- Proposed: graph-sampling GCN ---
    let mut cfg = TrainerConfig::default();
    cfg.sampler.frontier_size = 100;
    cfg.sampler.budget = 1000;
    cfg.hidden_dims = vec![128, 128];
    cfg.adam = AdamHyper {
        lr: 2e-2,
        ..AdamHyper::default()
    };
    cfg.epochs = 30;
    cfg.eval_every = 10;
    cfg.seed = 7;
    let mut ours = GsGcnTrainer::new(&dataset, cfg).expect("config");
    let report = ours.train().expect("training");
    println!(
        "\n[graph-sampling GCN]  {:.1}s train  val F1 {:.4}  test F1 {:.4}",
        report.total_train_secs, report.final_val_f1, report.test_f1
    );
    println!("  phase breakdown: {}", report.breakdown.report());

    // --- Baseline: GraphSAGE-style layer sampling ---
    let mut sage = SageTrainer::new(
        &dataset,
        SageConfig {
            fanout: 10,
            batch_size: 512,
            hidden_dims: vec![128, 128],
            adam: AdamHyper {
                lr: 2e-2,
                ..AdamHyper::default()
            },
            seed: 7,
        },
    )
    .expect("sage config");
    let mut last_loss = 0.0;
    for _ in 0..30 {
        last_loss = sage.train_epoch();
    }
    println!(
        "\n[GraphSAGE baseline]  {:.1}s train  val F1 {:.4}  (final loss {:.4})",
        sage.train_secs(),
        sage.evaluate_val(),
        last_loss
    );
    let sizes = sage.last_layer_sizes();
    println!(
        "  neighbor explosion: batch {} → sampled layers {:?} (×{:.1} work amplification)",
        sizes.last().unwrap(),
        sizes,
        sizes[0] as f64 / *sizes.last().unwrap() as f64
    );

    println!(
        "\nproposed processes ~{:.0} vertices per update; the layer sampler touches {} for the same batch.",
        1000.0,
        sizes[0]
    );
}
