//! Quickstart: train the graph-sampling GCN on a PPI-shaped dataset and
//! report F1 scores.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gsgcn::core::{GsGcnTrainer, TrainerConfig};
use gsgcn::data::presets;

fn main() {
    // 1. A multi-label protein-interaction-shaped dataset (~2k vertices,
    //    50 attributes, 121 classes — Table I's PPI row, scaled).
    let dataset = presets::ppi_scaled(42);
    println!(
        "dataset: {} (|V|={}, |E|={}, f={}, classes={})",
        dataset.name,
        dataset.graph.num_vertices(),
        dataset.num_undirected_edges(),
        dataset.feature_dim(),
        dataset.num_classes()
    );

    // 2. Configure the trainer: frontier sampler (Alg. 2/3), 2-layer GCN,
    //    parallel subgraph pool (Alg. 5).
    let mut cfg = TrainerConfig::default();
    cfg.sampler.frontier_size = 100;
    cfg.sampler.budget = 1000;
    cfg.hidden_dims = vec![128, 128];
    cfg.epochs = 30;
    cfg.eval_every = 5;
    cfg.seed = 42;

    // 3. Train.
    let mut trainer = GsGcnTrainer::new(&dataset, cfg).expect("valid configuration");
    let report = trainer.train().expect("training succeeds");

    // 4. Report.
    println!("\n{}", report.summary());
    println!("\nconvergence curve (training seconds → validation F1):");
    for p in &report.curve.points {
        println!("  {:>8.2}s  {:.4}", p.time_secs, p.metric);
    }
    println!(
        "\nper-iteration time: {:.2} ms across {} iterations",
        report.secs_per_iteration() * 1e3,
        report.epochs.iter().map(|e| e.batches).sum::<usize>()
    );
}
