//! Deeper GCNs (Sec. VI-D): the graph-sampling design keeps per-epoch
//! work linear in depth, while layer sampling grows by a `d_LS` factor
//! per layer ("neighbor explosion").
//!
//! Trains 1-, 2- and 3-layer models with both systems and prints the
//! per-epoch time ratio — the mechanism behind Table II.
//!
//! ```sh
//! cargo run --release --example deeper_gcn
//! ```

use gsgcn::baselines::sage::{SageConfig, SageTrainer};
use gsgcn::core::{GsGcnTrainer, TrainerConfig};
use gsgcn::data::presets;
use std::time::Instant;

fn main() {
    let dataset = presets::ppi_scaled(11);
    println!(
        "dataset: {} ({} vertices); measuring per-epoch time vs depth\n",
        dataset.name,
        dataset.graph.num_vertices()
    );
    println!(
        "{:<8} {:>16} {:>16} {:>10} {:>22}",
        "layers", "proposed (s/ep)", "layer-samp (s/ep)", "ratio", "sampled nodes (batch 256)"
    );

    for layers in 1..=3 {
        // Proposed.
        let mut cfg = TrainerConfig::default();
        cfg.sampler.frontier_size = 100;
        cfg.sampler.budget = 1000;
        cfg.hidden_dims = vec![128; layers];
        cfg.epochs = 2;
        cfg.eval_every = 0;
        cfg.seed = 11;
        let mut ours = GsGcnTrainer::new(&dataset, cfg).expect("config");
        ours.train_epoch().expect("epoch");
        let start = Instant::now();
        ours.train_epoch().expect("epoch");
        let ours_secs = start.elapsed().as_secs_f64();

        // Layer-sampling baseline.
        let mut sage = SageTrainer::new(
            &dataset,
            SageConfig {
                fanout: 10,
                batch_size: 256,
                hidden_dims: vec![128; layers],
                seed: 11,
                ..SageConfig::default()
            },
        )
        .expect("sage config");
        sage.train_epoch();
        let start = Instant::now();
        sage.train_epoch();
        let sage_secs = start.elapsed().as_secs_f64();

        println!(
            "{:<8} {:>16.3} {:>16.3} {:>9.1}x {:>22}",
            layers,
            ours_secs,
            sage_secs,
            sage_secs / ours_secs,
            format!("{:?}", sage.last_layer_sizes())
        );
    }

    println!("\nExpected shape (paper Table II): the ratio grows with depth — the layer");
    println!("sampler's bottom layer grows ~×fanout per added layer, the proposed GCN's");
    println!("per-epoch work stays linear.");
}
