//! Single-label community classification at scale — the Reddit workload
//! (Table I row 2), "the largest graph evaluated by state-of-the-art
//! embedding methods".
//!
//! Demonstrates parallel training (Alg. 5): the same configuration is
//! trained serially and with all cores; speedup and the per-phase
//! breakdown are reported.
//!
//! ```sh
//! cargo run --release --example reddit_community
//! ```

use gsgcn::core::trainer::EvalSplit;
use gsgcn::core::{GsGcnTrainer, TrainerConfig};
use gsgcn::data::presets;

fn run(threads: usize, epochs: usize) -> (f64, f64, gsgcn::metrics::timing::Breakdown) {
    let dataset = presets::reddit_scaled(43);
    let mut cfg = TrainerConfig::default();
    cfg.sampler.frontier_size = 150;
    cfg.sampler.budget = 1500;
    cfg.hidden_dims = vec![256, 256];
    cfg.epochs = epochs;
    cfg.eval_every = 0;
    cfg.threads = threads;
    // The serial-vs-parallel comparison must not hide sampling on extra
    // threads (see TrainerConfig::serial), env override included.
    cfg.sampler_threads = 0;
    cfg.p_inter = threads.max(1);
    cfg.seed = 43;
    let mut t = GsGcnTrainer::new(&dataset, cfg).expect("config");
    for _ in 0..epochs {
        t.train_epoch().expect("epoch");
    }
    let f1 = t.evaluate(EvalSplit::Val);
    (t.train_secs(), f1, *t.breakdown())
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let epochs = 6;
    println!("Reddit-shaped community classification; {epochs} epochs, 2-layer GCN, hidden 256");

    let (serial_secs, serial_f1, _) = run(1, epochs);
    println!("\nserial   (1 core):  {serial_secs:.2}s  val F1 {serial_f1:.4}");

    let (par_secs, par_f1, breakdown) = run(cores, epochs);
    println!("parallel ({cores} cores): {par_secs:.2}s  val F1 {par_f1:.4}");
    println!("\nspeedup: {:.1}x", serial_secs / par_secs);
    println!("parallel phase breakdown: {}", breakdown.report());
    println!("\n(identical F1 by design: the subgraph pool is instance-seeded, so the");
    println!(" training trajectory does not depend on the thread count)");
}
