//! # gsgcn — graph-sampling-based GCN
//!
//! Umbrella crate for the reproduction of *"Accurate, Efficient and
//! Scalable Graph Embedding"* (Zeng, Zhou, Srivastava, Kannan, Prasanna —
//! IPDPS 2019). Re-exports every workspace crate under one roof so
//! examples and downstream users can depend on a single package.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`graph`] | CSR graphs, builders, induced subgraphs, statistics |
//! | [`tensor`] | dense f32 matrices + parallel blocked GEMM |
//! | [`sampler`] | Dashboard frontier sampler (Alg. 2–4), alternative samplers, parallel pool |
//! | [`prop`] | feature propagation with feature-dimension partitioning (Alg. 6) |
//! | [`nn`] | GCN layers, losses, Adam |
//! | [`data`] | synthetic dataset generators matching Table I |
//! | [`metrics`] | F1 metrics + phase timing |
//! | [`core`] | the graph-sampling GCN trainer (Alg. 1 + 5) |
//! | [`baselines`] | GraphSAGE-style, full-batch and FastGCN-style trainers |
//! | [`serve`] | batched inference engine: L-hop query batches over a trained checkpoint |
//!
//! ## Quickstart
//!
//! ```
//! use gsgcn::data::presets;
//! use gsgcn::core::{TrainerConfig, GsGcnTrainer};
//!
//! let dataset = presets::ppi_scaled(42);
//! let cfg = TrainerConfig::quick_test();
//! let mut trainer = GsGcnTrainer::new(&dataset, cfg).unwrap();
//! let report = trainer.train().unwrap();
//! assert!(report.final_val_f1 > 0.0);
//! ```

pub use gsgcn_baselines as baselines;
pub use gsgcn_core as core;
pub use gsgcn_data as data;
pub use gsgcn_graph as graph;
pub use gsgcn_metrics as metrics;
pub use gsgcn_nn as nn;
pub use gsgcn_prop as prop;
pub use gsgcn_sampler as sampler;
pub use gsgcn_serve as serve;
pub use gsgcn_tensor as tensor;
