//! `gsgcn` — command-line interface for the graph-sampling GCN.
//!
//! ```text
//! gsgcn datasets
//! gsgcn shard --dataset ppi --out DIR [--vertices N] [--num-shards K]
//! gsgcn train --dataset ppi [--epochs 30] [--hidden 128,128] [--budget 1000]
//!             [--frontier 100] [--lr 0.02] [--threads 0]
//!             [--sampler-threads auto] [--patience N] [--seed 42]
//!             [--save model.gcn] [--shards DIR] [--graph-store mem|mmap]
//! gsgcn eval    --load model.gcn [--dataset ppi] [--hidden 128,128] [--seed 42]
//! gsgcn predict --load model.gcn --nodes 3,17,204
//! gsgcn serve   --load model.gcn [--addr 127.0.0.1:7878] [--workers 1]
//! gsgcn kernel [--probe avx512]
//! ```
//!
//! # Out-of-core operation
//!
//! `shard` writes a dataset as a partitioned on-disk graph store
//! (`gsgcn_data::StoreDataset`); `train`/`eval`/`predict`/`serve` accept
//! `--shards DIR` to run against it without regenerating (or fully
//! loading) the dataset. `--graph-store mem|mmap` picks the store
//! backend with flag > `GSGCN_GRAPH_STORE` env > default (`mem`)
//! precedence: `mmap` keeps the resident set bounded by the
//! `GSGCN_SHARD_CACHE` budget, `mem` materialises everything (the
//! negative control for the RSS-capped CI smoke test). `train` and
//! `predict` report the kernel-measured peak RSS on exit.
//!
//! `eval`, `predict` and `serve` default the dataset, seed, scale and
//! hidden dims to the values stored in the checkpoint (v2 provenance), so
//! a bare `--load` always runs against the dataset the model was trained
//! on. `predict` answers a one-shot node batch through the batched
//! inference engine (L-hop subgraph forward, not a full-graph pass);
//! `serve` keeps the engine running behind an event-driven TCP
//! front-end speaking the line protocol or a pipelined binary framing,
//! with weighted admission control and an optional activation cache
//! (see `gsgcn_serve`); `--frontend threaded` selects the original
//! thread-per-connection front-end. `kernel` reports the GEMM
//! microkernel tier dispatch; `--probe T` exits non-zero when the CPU
//! lacks tier `T` (used by CI to skip unsupported tiers visibly).
//!
//! Argument parsing is hand-rolled (the workspace has no CLI dependency);
//! unknown flags are reported with usage help.

use gsgcn::core::trainer::EvalSplit;
use gsgcn::core::{GsGcnTrainer, TrainerConfig};
use gsgcn::data::{presets, Dataset};
use gsgcn::nn::checkpoint::{CheckpointMeta, ModelWeights};
use gsgcn::tensor::{gemm, precision, Precision};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "usage:
  gsgcn datasets
  gsgcn shard --dataset <ppi|reddit|yelp|amazon> --out DIR [--vertices N]
              [--num-shards K] [--order <natural|bfs|degree>] [--seed N]
              [--features <f32|bf16>] [--full]
              — generate the dataset and write it as a partitioned
              on-disk graph store; --vertices scales the graph to N
              vertices, --num-shards 0 (default) picks a shard count
              from the graph size, --order picks the locality-aware
              placement (bfs groups neighborhoods into the same shard;
              ids the store answers to are unchanged), --features bf16
              stores feature rows at half width (labels stay f32;
              gathers widen back to f32)
  gsgcn train --dataset <ppi|reddit|yelp|amazon> [--epochs N] [--hidden A,B,..]
              [--budget N] [--frontier N] [--lr F] [--threads N]
              [--sampler-threads N|auto] [--patience N] [--seed N] [--full]
              [--save PATH] [--shards DIR] [--graph-store <mem|mmap>]
              [--prefetch]
              (--shards trains from a pre-sharded store dir instead of
               generating the dataset; --graph-store picks the store
               backend, flag > GSGCN_GRAPH_STORE env > mem; --prefetch
               pages upcoming shards in on a background thread, flag >
               GSGCN_SHARD_PREFETCH env > off)
              (--sampler-threads: dedicated sampler workers overlapping
               sampling with compute; default auto = min(2, cores/4),
               0 = synchronous in-loop sampling)
              (--precision <f32|bf16> on train/eval/predict/serve picks
               the activation storage precision, flag > GSGCN_PRECISION
               env > f32; bf16 stores activations at half width with f32
               accumulation — weights and gradients stay f32)
  gsgcn eval  --load PATH [--dataset <name>] [--hidden A,B,..] [--seed N]
              [--full|--scaled] [--shards DIR] [--graph-store <mem|mmap>]
              [--prefetch]
              (dataset/seed/scale/hidden default to the checkpoint's training
               values; an explicit flag overrides with a warning)
  gsgcn predict --load PATH --nodes N,N,.. [--probs] [--shards DIR]
              [--graph-store <mem|mmap>] [--prefetch] [dataset overrides as
              for eval] — classify a node batch on its L-hop subgraph
              through the batch engine; --probs prints full class rows
  gsgcn serve --load PATH [--addr HOST:PORT] [--workers N] [--max-batch N]
              [--max-wait-us N] [--queue N] [--admission <block|shed>]
              [--frontend <event|threaded>] [--protocol <line|binary>]
              [--cache-bytes SIZE] [--max-conns N] [--idle-timeout-ms N]
              [dataset overrides as for eval]
              — line protocol: send `3 17 204\\n`, receive
              `ok 3:<labels>:<p> ..\\n` (`err ..\\n` on failure,
              `overloaded\\n` when admission sheds, `quit` to close);
              --protocol binary selects the pipelined length-prefixed
              framing (event front-end only; see gsgcn_serve docs).
              SIZE accepts 64MiB/1GB/..; --cache-bytes 0 disables the
              activation cache and overrides the GSGCN_ACTIVATION_CACHE
              env default; accepts --shards/--graph-store/--prefetch as
              for predict
  gsgcn kernel [--probe <scalar|avx2|avx512>]";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if !a.starts_with("--") {
            return Err(format!("unexpected argument {a:?}"));
        }
        let key = a.trim_start_matches("--").to_string();
        if key == "full" || key == "scaled" || key == "probs" || key == "prefetch" {
            flags.insert(key, "1".to_string());
            i += 1;
        } else {
            let val = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key, val.clone());
            i += 2;
        }
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value {v:?} for --{key}")),
    }
}

/// The dataset-generation seed. The single place its default lives: the
/// generated dataset, the trainer seed and the checkpoint provenance must
/// all agree or `eval --load` regenerates a different random graph than
/// the one trained on.
fn dataset_seed(flags: &HashMap<String, String>) -> Result<u64, String> {
    get(flags, "seed", 42u64)
}

fn load_dataset(flags: &HashMap<String, String>) -> Result<Dataset, String> {
    let name = flags
        .get("dataset")
        .ok_or("missing --dataset")?
        .to_lowercase();
    let seed = dataset_seed(flags)?;
    let full = flags.contains_key("full");
    // --vertices N: scale the named dataset's spec to an explicit vertex
    // count (used by `shard` to size out-of-core fixtures).
    if let Some(v) = flags.get("vertices") {
        let nv: usize = v
            .parse()
            .map_err(|_| format!("invalid value {v:?} for --vertices"))?;
        let spec = match name.as_str() {
            "ppi" => presets::ppi_spec(),
            "reddit" => presets::reddit_spec(),
            "yelp" => presets::yelp_spec(),
            "amazon" => presets::amazon_spec(),
            _ => return Err(format!("unknown dataset {name:?} (ppi|reddit|yelp|amazon)")),
        };
        return Ok(presets::scale_spec(&spec, nv).generate(seed));
    }
    let d = match (name.as_str(), full) {
        ("ppi", false) => presets::ppi_scaled(seed),
        ("reddit", false) => presets::reddit_scaled(seed),
        ("yelp", false) => presets::yelp_scaled(seed),
        ("amazon", false) => presets::amazon_scaled(seed),
        ("ppi", true) => presets::ppi_full(seed),
        ("reddit", true) => presets::reddit_full(seed),
        ("yelp", true) => presets::yelp_full(seed),
        ("amazon", true) => presets::amazon_full(seed),
        _ => return Err(format!("unknown dataset {name:?} (ppi|reddit|yelp|amazon)")),
    };
    Ok(d)
}

/// Apply `--graph-store <mem|mmap>` with flag > env > default precedence:
/// the flag simply wins by overwriting `GSGCN_GRAPH_STORE` before any
/// store is built, so every downstream `from_parts_env`/`open` agrees.
fn apply_graph_store_flag(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(v) = flags.get("graph-store") {
        match v.to_lowercase().as_str() {
            "mem" | "mmap" => std::env::set_var("GSGCN_GRAPH_STORE", v.to_lowercase()),
            other => return Err(format!("bad --graph-store {other:?}: expected mem|mmap")),
        }
    }
    // `--prefetch`: enable the async shard prefetcher on every mmap store
    // this command opens, same flag > GSGCN_SHARD_PREFETCH env precedence.
    if flags.contains_key("prefetch") {
        std::env::set_var("GSGCN_SHARD_PREFETCH", "1");
    }
    Ok(())
}

/// Apply `--precision <f32|bf16>` with flag > `GSGCN_PRECISION` env > f32
/// precedence. Must run before anything computes (the global precision
/// latches on first read); a flag that loses that race is a bug, so it
/// fails loudly instead of silently running at the wrong precision.
fn apply_precision_flag(flags: &HashMap<String, String>) -> Result<(), String> {
    let Some(spec) = flags.get("precision") else {
        return Ok(());
    };
    let want = Precision::parse(spec)
        .ok_or_else(|| format!("bad --precision {spec:?}: expected f32|bf16"))?;
    let got = precision::force_global(want);
    if got != want {
        return Err(format!(
            "--precision {want} requested but the session already latched {got}"
        ));
    }
    Ok(())
}

/// One-line shard-cache report printed by `train`/`eval`/`predict`
/// whenever the command read through an mmap store — with or without
/// prefetch (the prefetch counters appear only when requests were
/// issued).
fn print_cache_stats(store: &gsgcn::graph::GraphStore) {
    if let Some(stats) = store.cache_stats() {
        println!("shard cache: {}", stats.summary());
    }
}

/// Report the kernel-measured peak resident set (`VmHWM`) and peak
/// address space (`VmPeak`) — the numbers the out-of-core CI smoke test
/// caps (via `ulimit -v`, which limits virtual memory).
fn print_peak_rss() {
    use gsgcn::metrics::mem::{format_bytes, peak_rss_bytes, peak_vm_bytes};
    if let Some(peak) = peak_rss_bytes() {
        let vm = peak_vm_bytes()
            .map(|b| format!(" (peak VM {})", format_bytes(b)))
            .unwrap_or_default();
        println!("peak RSS {}{vm}", format_bytes(peak));
    }
}

fn parse_hidden(flags: &HashMap<String, String>) -> Result<Vec<usize>, String> {
    match flags.get("hidden") {
        None => Ok(vec![128, 128]),
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("invalid hidden dim {s:?}"))
            })
            .collect(),
    }
}

fn build_config(flags: &HashMap<String, String>) -> Result<TrainerConfig, String> {
    let mut cfg = TrainerConfig {
        hidden_dims: parse_hidden(flags)?,
        ..TrainerConfig::default()
    };
    cfg.epochs = get(flags, "epochs", 30usize)?;
    cfg.sampler.budget = get(flags, "budget", 1000usize)?;
    cfg.sampler.frontier_size = get(flags, "frontier", cfg.sampler.budget / 10)?;
    cfg.adam.lr = get(flags, "lr", 2e-2f32)?;
    cfg.threads = get(flags, "threads", 0usize)?;
    cfg.seed = dataset_seed(flags)?;
    cfg.eval_every = get(flags, "eval-every", 5usize)?;
    let patience: usize = get(flags, "patience", 0usize)?;
    cfg.patience = if patience > 0 { Some(patience) } else { None };
    cfg.p_inter = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };
    // Pipelined sampling: flag > env (via TrainerConfig::default) > auto.
    cfg.sampler_threads = match flags.get("sampler-threads") {
        Some(spec) => gsgcn::core::config::parse_sampler_threads(spec)
            .map_err(|e| format!("--sampler-threads: {e}"))?,
        None if std::env::var_os("GSGCN_SAMPLER_THREADS").is_some() => cfg.sampler_threads,
        None => gsgcn::core::config::auto_sampler_threads(),
    };
    Ok(cfg)
}

fn cmd_datasets() -> Result<(), String> {
    println!(
        "{:<10} {:>10} {:>12} {:>6} {:>6} task",
        "name", "#vertices", "#edges", "attr", "cls"
    );
    for spec in [
        presets::ppi_spec(),
        presets::reddit_spec(),
        presets::yelp_spec(),
        presets::amazon_spec(),
    ] {
        println!(
            "{:<10} {:>10} {:>12} {:>6} {:>6} {}",
            spec.name.to_lowercase(),
            spec.vertices,
            spec.edges,
            spec.feature_dim,
            spec.classes,
            spec.task.mark()
        );
    }
    println!("\nscaled versions are the default; pass --full for Table-I scale");
    Ok(())
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn cmd_shard(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flags.get("out").ok_or("missing --out")?;
    let num_shards = get(flags, "num-shards", 0usize)?;
    let order: gsgcn::graph::StoreOrder = match flags.get("order") {
        None => gsgcn::graph::StoreOrder::Natural,
        Some(v) => v.parse().map_err(|e| format!("--order: {e}"))?,
    };
    let feat_prec = match flags.get("features") {
        None => Precision::F32,
        Some(v) => {
            Precision::parse(v).ok_or_else(|| format!("bad --features {v:?}: expected f32|bf16"))?
        }
    };
    let dataset = load_dataset(flags)?;
    let dir = std::path::Path::new(out);
    println!(
        "sharding {} (|V|={}, |E|={}, f={}, classes={}) into {out}, {} order, {feat_prec} features",
        dataset.name,
        dataset.graph.num_vertices(),
        dataset.graph.num_edges(),
        dataset.feature_dim(),
        dataset.num_classes(),
        order.name(),
    );
    dataset
        .spill_to_dir_with_precision(dir, num_shards, order, feat_prec)
        .map_err(|e| format!("sharding into {out:?}: {e}"))?;
    // Report what landed on disk so operators can sanity-check sizes.
    let mut bytes = 0u64;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if let Ok(entries) = std::fs::read_dir(&d) {
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else if let Ok(m) = e.metadata() {
                    bytes += m.len();
                }
            }
        }
    }
    println!(
        "wrote full + train stores ({} on disk); open with --shards {out}",
        gsgcn::metrics::mem::format_bytes(bytes as usize)
    );
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    apply_precision_flag(flags)?;
    apply_graph_store_flag(flags)?;
    if let Some(dir) = flags.get("shards") {
        return train_from_shards(flags, dir);
    }
    let dataset = load_dataset(flags)?;
    let cfg = build_config(flags)?;
    println!(
        "training on {} (|V|={}, f={}, classes={}) — {} epochs, hidden {:?}",
        dataset.name,
        dataset.graph.num_vertices(),
        dataset.feature_dim(),
        dataset.num_classes(),
        cfg.epochs,
        cfg.hidden_dims
    );
    match cfg.sampler_threads {
        0 => println!("sampler: synchronous (in-loop refills)"),
        n => println!("sampler: pipelined, {n} worker thread{}", plural(n)),
    }
    let mut trainer = GsGcnTrainer::new(&dataset, cfg)?;
    let report = trainer.train()?;
    println!("{}", report.summary());
    if let Some(path) = flags.get("save") {
        // Record the training-time dataset provenance: the datasets are
        // synthetic (regenerated from name+seed), so a later `eval` must
        // regenerate the *same* one or the F1 it reports is meaningless.
        let meta = CheckpointMeta {
            dataset: dataset.name.to_lowercase(),
            seed: dataset_seed(flags)?,
            full: flags.contains_key("full"),
            hidden_dims: parse_hidden(flags)?,
        };
        let weights = trainer.model().export_weights().with_meta(meta);
        weights
            .save(path)
            .map_err(|e| format!("saving {path:?}: {e}"))?;
        println!("saved {} parameters to {path}", weights.num_params());
    }
    print_peak_rss();
    Ok(())
}

/// `gsgcn train --shards DIR`: train against a pre-sharded on-disk
/// store. On the `mmap` backend nothing is materialised — sampling and
/// evaluation stream through the shard cache, so the resident set stays
/// bounded regardless of graph size.
fn train_from_shards(flags: &HashMap<String, String>, dir: &str) -> Result<(), String> {
    let sd = gsgcn::data::StoreDataset::open(std::path::Path::new(dir))
        .map_err(|e| format!("opening shard dir {dir:?}: {e}"))?;
    let cfg = build_config(flags)?;
    println!(
        "training on sharded {} from {dir} (|V|={}, f={}, classes={}, backend {:?}, \
         {} shard{}, {} order, prefetch {}) — {} epochs, hidden {:?}",
        sd.name,
        sd.num_vertices(),
        sd.feature_dim(),
        sd.num_classes(),
        sd.full.backend(),
        sd.full.num_shards(),
        plural(sd.full.num_shards()),
        sd.full.order().name(),
        if sd.train.prefetch_enabled() {
            "on"
        } else {
            "off"
        },
        cfg.epochs,
        cfg.hidden_dims
    );
    let mut trainer = GsGcnTrainer::from_store(&sd, cfg)?;
    let report = trainer.train()?;
    println!("{}", report.summary());
    print_cache_stats(&sd.full);
    if let Some(path) = flags.get("save") {
        let meta = CheckpointMeta {
            dataset: sd.name.to_lowercase(),
            seed: dataset_seed(flags)?,
            full: flags.contains_key("full"),
            hidden_dims: parse_hidden(flags)?,
        };
        let weights = trainer.model().export_weights().with_meta(meta);
        weights
            .save(path)
            .map_err(|e| format!("saving {path:?}: {e}"))?;
        println!("saved {} parameters to {path}", weights.num_params());
    }
    print_peak_rss();
    Ok(())
}

/// Fill `flags` defaults from the checkpoint's provenance and warn when an
/// explicit flag contradicts it (the model is then scored on a different
/// dataset than it was trained on — almost always a mistake). Mismatch is
/// judged on the *parsed* values, so `--seed 07` or `--hidden "128, 128"`
/// do not trigger false warnings.
fn apply_checkpoint_meta(flags: &mut HashMap<String, String>, meta: &CheckpointMeta) {
    let warn = |key: &str, got: &str, want: &dyn std::fmt::Display| {
        eprintln!(
            "warning: --{key} {got} differs from the checkpoint's \
             training value ({want}); evaluating against --{key} {got}"
        );
    };
    match flags.get("dataset") {
        None => {
            flags.insert("dataset".into(), meta.dataset.clone());
        }
        Some(got) if !got.eq_ignore_ascii_case(&meta.dataset) => {
            warn("dataset", got, &meta.dataset);
        }
        _ => {}
    }
    match flags.get("seed") {
        None => {
            flags.insert("seed".into(), meta.seed.to_string());
        }
        // An unparseable value is left for build_config's error path.
        Some(got) if got.parse::<u64>().is_ok_and(|s| s != meta.seed) => {
            warn("seed", got, &meta.seed);
        }
        _ => {}
    }
    let hidden_csv = meta
        .hidden_dims
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(",");
    match flags.get("hidden").cloned() {
        None => {
            flags.insert("hidden".into(), hidden_csv);
        }
        Some(got) => {
            if parse_hidden(flags).is_ok_and(|dims| dims != meta.hidden_dims) {
                warn("hidden", &got, &hidden_csv);
            }
        }
    }
    // `--full` is presence-only, so `--scaled` is the explicit opt-out
    // needed to override a full-scale checkpoint in the other direction.
    match (
        meta.full,
        flags.contains_key("full"),
        flags.contains_key("scaled"),
    ) {
        (true, _, true) => eprintln!(
            "warning: --scaled given but the checkpoint was trained on the full-scale dataset"
        ),
        (true, false, false) => {
            flags.insert("full".into(), "1".into());
        }
        (false, true, _) => {
            eprintln!("warning: --full given but the checkpoint was trained on the scaled dataset")
        }
        _ => {}
    }
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    apply_precision_flag(flags)?;
    apply_graph_store_flag(flags)?;
    let path = flags.get("load").ok_or("missing --load")?;
    let weights = ModelWeights::load(path).map_err(|e| format!("loading {path:?}: {e}"))?;
    let mut flags = flags.clone();
    match &weights.meta {
        Some(meta) => apply_checkpoint_meta(&mut flags, meta),
        None => {
            if !flags.contains_key("seed") {
                eprintln!(
                    "warning: {path} is a v1 checkpoint without dataset provenance; \
                     regenerating with --seed 42 — pass the training --seed if it differed"
                );
            }
        }
    }
    let mut cfg = build_config(&flags)?;
    cfg.epochs = 1;
    // Evaluation never consumes training subgraphs: don't spin up sampler
    // workers that would immediately fill their queue for nothing.
    cfg.sampler_threads = 0;
    // The sharded store and the regenerated dataset are mutually
    // exclusive sources; a StoreDataset needs no provenance (its graph
    // is on disk, not regenerated).
    let sd: Option<gsgcn::data::StoreDataset>;
    let dataset;
    let mut trainer = match flags.get("shards") {
        Some(dir) => {
            sd = Some(
                gsgcn::data::StoreDataset::open(std::path::Path::new(dir))
                    .map_err(|e| format!("opening shard dir {dir:?}: {e}"))?,
            );
            GsGcnTrainer::from_store(sd.as_ref().unwrap(), cfg)?
        }
        None => {
            sd = None;
            dataset = load_dataset(&flags)?;
            GsGcnTrainer::new(&dataset, cfg)?
        }
    };
    trainer.import_weights(&weights)?;
    println!("loaded {} parameters from {path}", weights.num_params());
    for (name, split) in [
        ("train", EvalSplit::Train),
        ("val", EvalSplit::Val),
        ("test", EvalSplit::Test),
    ] {
        println!("{name:<6} F1-micro {:.4}", trainer.evaluate(split));
    }
    if let Some(sd) = &sd {
        print_cache_stats(&sd.full);
    }
    Ok(())
}

/// Shared by `predict`/`serve`: load a checkpoint, regenerate its
/// training dataset (provenance-defaulted, as in `eval`) and assemble
/// the serving classifier around the restored model.
fn build_classifier(
    flags: &HashMap<String, String>,
) -> Result<gsgcn::serve::NodeClassifier, String> {
    use gsgcn::nn::model::{GcnConfig, GcnModel, LossKind};
    use std::sync::Arc;

    let path = flags.get("load").ok_or("missing --load")?;
    let weights = ModelWeights::load(path).map_err(|e| format!("loading {path:?}: {e}"))?;
    let mut flags = flags.clone();
    if let Some(meta) = &weights.meta {
        apply_checkpoint_meta(&mut flags, meta);
    }
    // `--shards DIR` serves straight from the on-disk store; otherwise
    // the training dataset is regenerated from checkpoint provenance.
    if let Some(dir) = flags.get("shards") {
        let sd = gsgcn::data::StoreDataset::open(std::path::Path::new(dir))
            .map_err(|e| format!("opening shard dir {dir:?}: {e}"))?;
        let loss = match sd.task {
            gsgcn::data::TaskKind::MultiLabel => LossKind::SigmoidBce,
            gsgcn::data::TaskKind::SingleLabel => LossKind::SoftmaxCe,
        };
        let cfg = GcnConfig {
            in_dim: sd.feature_dim(),
            hidden_dims: parse_hidden(&flags)?,
            num_classes: sd.num_classes(),
            loss,
            ..GcnConfig::default()
        };
        cfg.validate()?;
        let mut model = GcnModel::new(cfg, 1);
        model.import_weights(&weights)?;
        println!(
            "loaded {} parameters from {path} — serving sharded {} from {dir} \
             (|V|={}, {} classes, backend {:?}, {}-hop queries, {} order, \
             shard cache {}, prefetch {})",
            weights.num_params(),
            sd.name,
            sd.num_vertices(),
            sd.num_classes(),
            sd.full.backend(),
            model.num_layers(),
            sd.full.order().name(),
            gsgcn::metrics::mem::format_bytes(gsgcn::graph::store::shard_cache_budget_from_env()),
            if sd.full.prefetch_enabled() {
                "on"
            } else {
                "off"
            },
        );
        return gsgcn::serve::NodeClassifier::from_store(Arc::new(model), Arc::clone(&sd.full));
    }
    let dataset = load_dataset(&flags)?;
    let loss = match dataset.task {
        gsgcn::data::TaskKind::MultiLabel => LossKind::SigmoidBce,
        gsgcn::data::TaskKind::SingleLabel => LossKind::SoftmaxCe,
    };
    let cfg = GcnConfig {
        in_dim: dataset.feature_dim(),
        hidden_dims: parse_hidden(&flags)?,
        num_classes: dataset.num_classes(),
        loss,
        ..GcnConfig::default()
    };
    cfg.validate()?;
    let mut model = GcnModel::new(cfg, 1);
    model.import_weights(&weights)?;
    println!(
        "loaded {} parameters from {path} — serving {} (|V|={}, {} classes, {}-hop queries)",
        weights.num_params(),
        dataset.name,
        dataset.graph.num_vertices(),
        dataset.num_classes(),
        model.num_layers(),
    );
    gsgcn::serve::NodeClassifier::new(
        Arc::new(model),
        Arc::new(dataset.graph),
        Arc::new(dataset.features),
    )
}

fn cmd_predict(flags: &HashMap<String, String>) -> Result<(), String> {
    use gsgcn::serve::{BatchEngine, EngineConfig};
    use std::sync::Arc;

    apply_precision_flag(flags)?;
    apply_graph_store_flag(flags)?;
    // Same id syntax as one TCP request line (commas and/or spaces).
    let nodes = gsgcn::serve::tcp::parse_request(flags.get("nodes").ok_or("missing --nodes")?)
        .map_err(|e| format!("--nodes: {e}"))?;
    let classifier = Arc::new(build_classifier(flags)?);
    let want_probs = flags.contains_key("probs");
    let store = Arc::clone(classifier.store());
    // One-shot batch through the engine — the same path `serve` runs.
    let engine =
        BatchEngine::spawn(classifier, EngineConfig::default()).map_err(|e| e.to_string())?;
    let preds = engine.classify(nodes).map_err(|e| e.to_string())?;
    for p in &preds {
        print!(
            "node {:>8}  label(s) {:<12} p_max {:.4}",
            p.node,
            p.labels_display(),
            p.max_prob()
        );
        if want_probs {
            let row = p
                .probs
                .iter()
                .map(|x| format!("{x:.4}"))
                .collect::<Vec<_>>()
                .join(" ");
            print!("  probs [{row}]");
        }
        println!();
    }
    print_cache_stats(&store);
    print_peak_rss();
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use gsgcn::serve::poll::{EventFrontend, FrontendConfig, Protocol};
    use gsgcn::serve::{cache, tcp, ActivationCache, AdmissionControl, BatchEngine, EngineConfig};
    use std::sync::Arc;

    apply_precision_flag(flags)?;
    apply_graph_store_flag(flags)?;
    // Cache budget policy (the GSGCN_KERNEL pattern): an explicit
    // --cache-bytes wins over the GSGCN_ACTIVATION_CACHE env default,
    // which `NodeClassifier::new` applies on its own.
    let classifier = match flags.get("cache-bytes") {
        None => build_classifier(flags)?,
        Some(s) => {
            let bytes = cache::parse_cache_budget(s).map_err(|e| format!("--cache-bytes: {e}"))?;
            build_classifier(flags)?.with_cache(if bytes == 0 {
                None
            } else {
                // Cached rows follow the resolved activation precision:
                // bf16 serving halves cache bytes-per-row.
                Some(Arc::new(ActivationCache::with_precision(
                    bytes,
                    precision::current(),
                )))
            })
        }
    };
    let cache_note = match classifier.cache() {
        Some(c) => format!("activation cache {} bytes", c.budget_bytes()),
        None => "activation cache off".to_string(),
    };
    let classifier = Arc::new(classifier);

    let cfg = EngineConfig {
        workers: get(flags, "workers", 1usize)?,
        max_batch: get(flags, "max-batch", 64usize)?,
        max_wait: std::time::Duration::from_micros(get(flags, "max-wait-us", 200u64)?),
        queue_capacity: get(flags, "queue", 1024usize)?,
        // Serving default is shed: an overloaded server answers
        // `overloaded` fast instead of letting every client's p99
        // collapse (the library default stays Block).
        admission: get(flags, "admission", AdmissionControl::Shed)?,
    };
    let max_conns = get(flags, "max-conns", 1024usize)?;
    if max_conns == 0 {
        return Err("--max-conns must be ≥ 1 (0 would refuse every connection)".into());
    }
    let idle_ms = get(flags, "idle-timeout-ms", 60_000u64)?;
    if idle_ms == 0 {
        return Err("--idle-timeout-ms must be ≥ 1 (0 would evict every connection)".into());
    }
    let idle_timeout = std::time::Duration::from_millis(idle_ms);
    let protocol: Protocol = get(flags, "protocol", Protocol::Line)?;
    let frontend = flags.get("frontend").map(String::as_str).unwrap_or("event");
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());

    let engine = Arc::new(BatchEngine::spawn(classifier, cfg)?);
    let banner = |local: std::net::SocketAddr| {
        println!(
            "serving on {local} [{frontend}/{}] — {} worker{}, max batch {} nodes, \
             max wait {}µs, admission {:?}, {cache_note}, max {max_conns} conns, \
             idle timeout {idle_ms}ms",
            match protocol {
                Protocol::Line => "line",
                Protocol::Binary => "binary",
            },
            cfg.workers,
            plural(cfg.workers),
            cfg.max_batch,
            cfg.max_wait.as_micros(),
            cfg.admission,
        );
    };
    match frontend {
        "event" => {
            let fe = EventFrontend::spawn(
                engine,
                &addr,
                FrontendConfig {
                    protocol,
                    max_conns,
                    idle_timeout,
                    ..FrontendConfig::default()
                },
            )
            .map_err(|e| format!("binding {addr}: {e}"))?;
            banner(fe.local_addr());
            fe.join();
            Ok(())
        }
        "threaded" => {
            if protocol != Protocol::Line {
                return Err("--frontend threaded only speaks --protocol line".into());
            }
            let fe = tcp::TcpFrontend::spawn(
                engine,
                &addr,
                tcp::TcpConfig {
                    max_conns,
                    idle_timeout,
                },
            )
            .map_err(|e| format!("binding {addr}: {e}"))?;
            banner(fe.local_addr());
            // Park forever: the operator terminates `gsgcn serve`.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        other => Err(format!("bad --frontend {other:?}: expected event|threaded")),
    }
}

/// Exit code for `kernel --probe` on a valid tier the CPU cannot run.
/// Distinct from 1 (usage/parse/runtime errors) so CI can tell "skip this
/// tier" apart from "the probe itself is broken" (which must fail the job).
const PROBE_UNAVAILABLE: u8 = 2;

/// Report (or probe, for CI) the GEMM microkernel tier dispatch.
fn cmd_kernel(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    if let Some(spec) = flags.get("probe") {
        let tier = gemm::Tier::parse(spec)
            .ok_or_else(|| format!("unknown kernel tier {spec:?} (scalar|avx2|avx512)"))?;
        if tier.is_available() {
            println!(
                "{} available ({}; bf16 via {})",
                tier.name(),
                tier.precisions().join(", "),
                gemm::bf16_engine(tier)
            );
            return Ok(ExitCode::SUCCESS);
        }
        eprintln!("kernel tier `{}` is not available on this CPU", tier.name());
        return Ok(ExitCode::from(PROBE_UNAVAILABLE));
    }
    println!(
        "selected  {} (storing {})",
        gemm::selected_tier().name(),
        precision::current()
    );
    println!(
        "available {}",
        gemm::available_tiers()
            .iter()
            .map(|t| {
                let engine = gemm::bf16_engine(*t);
                if engine == "widen" {
                    format!("{}[{}]", t.name(), t.precisions().join(","))
                } else {
                    format!("{}[f32,bf16:{engine}]", t.name())
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "datasets" => cmd_datasets(),
        "kernel" => match parse_flags(&args[1..]).and_then(|flags| cmd_kernel(&flags)) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "shard" | "train" | "eval" | "predict" | "serve" => match parse_flags(&args[1..]) {
            Ok(flags) => match cmd.as_str() {
                "shard" => cmd_shard(&flags),
                "train" => cmd_train(&flags),
                "eval" => cmd_eval(&flags),
                "predict" => cmd_predict(&flags),
                _ => cmd_serve(&flags),
            },
            Err(e) => Err(e),
        },
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
