//! `gsgcn` — command-line interface for the graph-sampling GCN.
//!
//! ```text
//! gsgcn datasets
//! gsgcn train --dataset ppi [--epochs 30] [--hidden 128,128] [--budget 1000]
//!             [--frontier 100] [--lr 0.02] [--threads 0] [--patience N]
//!             [--seed 42] [--save model.gcn]
//! gsgcn eval  --dataset ppi --load model.gcn [--hidden 128,128] [--seed 42]
//! ```
//!
//! Argument parsing is hand-rolled (the workspace has no CLI dependency);
//! unknown flags are reported with usage help.

use gsgcn::core::trainer::EvalSplit;
use gsgcn::core::{GsGcnTrainer, TrainerConfig};
use gsgcn::data::{presets, Dataset};
use gsgcn::nn::checkpoint::ModelWeights;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "usage:
  gsgcn datasets
  gsgcn train --dataset <ppi|reddit|yelp|amazon> [--epochs N] [--hidden A,B,..]
              [--budget N] [--frontier N] [--lr F] [--threads N]
              [--patience N] [--seed N] [--full] [--save PATH]
  gsgcn eval  --dataset <name> --load PATH [--hidden A,B,..] [--seed N] [--full]";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if !a.starts_with("--") {
            return Err(format!("unexpected argument {a:?}"));
        }
        let key = a.trim_start_matches("--").to_string();
        if key == "full" {
            flags.insert(key, "1".to_string());
            i += 1;
        } else {
            let val = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key, val.clone());
            i += 2;
        }
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value {v:?} for --{key}")),
    }
}

fn load_dataset(flags: &HashMap<String, String>) -> Result<Dataset, String> {
    let name = flags
        .get("dataset")
        .ok_or("missing --dataset")?
        .to_lowercase();
    let seed: u64 = get(flags, "seed", 42u64)?;
    let full = flags.contains_key("full");
    let d = match (name.as_str(), full) {
        ("ppi", false) => presets::ppi_scaled(seed),
        ("reddit", false) => presets::reddit_scaled(seed),
        ("yelp", false) => presets::yelp_scaled(seed),
        ("amazon", false) => presets::amazon_scaled(seed),
        ("ppi", true) => presets::ppi_full(seed),
        ("reddit", true) => presets::reddit_full(seed),
        ("yelp", true) => presets::yelp_full(seed),
        ("amazon", true) => presets::amazon_full(seed),
        _ => return Err(format!("unknown dataset {name:?} (ppi|reddit|yelp|amazon)")),
    };
    Ok(d)
}

fn parse_hidden(flags: &HashMap<String, String>) -> Result<Vec<usize>, String> {
    match flags.get("hidden") {
        None => Ok(vec![128, 128]),
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("invalid hidden dim {s:?}"))
            })
            .collect(),
    }
}

fn build_config(flags: &HashMap<String, String>) -> Result<TrainerConfig, String> {
    let mut cfg = TrainerConfig {
        hidden_dims: parse_hidden(flags)?,
        ..TrainerConfig::default()
    };
    cfg.epochs = get(flags, "epochs", 30usize)?;
    cfg.sampler.budget = get(flags, "budget", 1000usize)?;
    cfg.sampler.frontier_size = get(flags, "frontier", cfg.sampler.budget / 10)?;
    cfg.adam.lr = get(flags, "lr", 2e-2f32)?;
    cfg.threads = get(flags, "threads", 0usize)?;
    cfg.seed = get(flags, "seed", 42u64)?;
    cfg.eval_every = get(flags, "eval-every", 5usize)?;
    let patience: usize = get(flags, "patience", 0usize)?;
    cfg.patience = if patience > 0 { Some(patience) } else { None };
    cfg.p_inter = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };
    Ok(cfg)
}

fn cmd_datasets() -> Result<(), String> {
    println!(
        "{:<10} {:>10} {:>12} {:>6} {:>6} task",
        "name", "#vertices", "#edges", "attr", "cls"
    );
    for spec in [
        presets::ppi_spec(),
        presets::reddit_spec(),
        presets::yelp_spec(),
        presets::amazon_spec(),
    ] {
        println!(
            "{:<10} {:>10} {:>12} {:>6} {:>6} {}",
            spec.name.to_lowercase(),
            spec.vertices,
            spec.edges,
            spec.feature_dim,
            spec.classes,
            spec.task.mark()
        );
    }
    println!("\nscaled versions are the default; pass --full for Table-I scale");
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let cfg = build_config(flags)?;
    println!(
        "training on {} (|V|={}, f={}, classes={}) — {} epochs, hidden {:?}",
        dataset.name,
        dataset.graph.num_vertices(),
        dataset.feature_dim(),
        dataset.num_classes(),
        cfg.epochs,
        cfg.hidden_dims
    );
    let mut trainer = GsGcnTrainer::new(&dataset, cfg)?;
    let report = trainer.train()?;
    println!("{}", report.summary());
    if let Some(path) = flags.get("save") {
        let weights = trainer.model().export_weights();
        weights
            .save(path)
            .map_err(|e| format!("saving {path:?}: {e}"))?;
        println!("saved {} parameters to {path}", weights.num_params());
    }
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let path = flags.get("load").ok_or("missing --load")?;
    let weights = ModelWeights::load(path).map_err(|e| format!("loading {path:?}: {e}"))?;
    let mut cfg = build_config(flags)?;
    cfg.epochs = 1;
    let mut trainer = GsGcnTrainer::new(&dataset, cfg)?;
    trainer.import_weights(&weights)?;
    println!("loaded {} parameters from {path}", weights.num_params());
    for (name, split) in [
        ("train", EvalSplit::Train),
        ("val", EvalSplit::Val),
        ("test", EvalSplit::Test),
    ] {
        println!("{name:<6} F1-micro {:.4}", trainer.evaluate(split));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "datasets" => cmd_datasets(),
        "train" | "eval" => match parse_flags(&args[1..]) {
            Ok(flags) => {
                if cmd == "train" {
                    cmd_train(&flags)
                } else {
                    cmd_eval(&flags)
                }
            }
            Err(e) => Err(e),
        },
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
