//! Integration tests of the Sec. III-C sampler-quality requirements:
//! sampled subgraphs must preserve connectivity characteristics, and
//! every training vertex must have non-negligible inclusion probability.

use gsgcn::data::presets;
use gsgcn::graph::stats;
use gsgcn::sampler::alt::UniformNodeSampler;
use gsgcn::sampler::dashboard::{DashboardSampler, FrontierConfig};
use gsgcn::sampler::GraphSampler;

#[test]
fn frontier_preserves_connectivity_better_than_uniform() {
    let d = presets::ppi_scaled(31);
    let tv = d.train_view();
    let budget = 400;

    let frontier = DashboardSampler::new(FrontierConfig {
        frontier_size: 50,
        budget,
        ..FrontierConfig::default()
    });
    let uniform = UniformNodeSampler { budget };

    // Frontier pops can repeat vertices, so |V_sub| differs between the
    // samplers — compare internal connectivity per vertex (mean subgraph
    // degree), the quantity Sec. III-C's requirement 1 is about.
    let (mut frontier_deg, mut uniform_deg) = (0.0f64, 0.0f64);
    for seed in 0..5 {
        let fs = frontier.sample_subgraph(&*tv.graph, seed);
        frontier_deg += fs.graph.num_edges() as f64 / fs.num_vertices().max(1) as f64;
        let us = uniform.sample_subgraph(&*tv.graph, seed);
        uniform_deg += us.graph.num_edges() as f64 / us.num_vertices().max(1) as f64;
    }
    assert!(
        frontier_deg > uniform_deg,
        "frontier subgraphs should be internally denser: {frontier_deg:.1} vs {uniform_deg:.1}"
    );
}

#[test]
fn frontier_degree_shape_no_worse_than_uniform() {
    // Induced subgraphs always shift raw degrees down; the preservation
    // claim is *relative*: the frontier sampler's degree shape should be
    // at least as close to the original as a topology-blind sample's.
    let d = presets::reddit_scaled(32);
    let tv = d.train_view();
    let frontier = DashboardSampler::new(FrontierConfig {
        frontier_size: 100,
        budget: 800,
        ..FrontierConfig::default()
    });
    let uniform = UniformNodeSampler { budget: 800 };
    let (mut f_dist, mut u_dist) = (0.0f64, 0.0f64);
    for seed in 0..5 {
        f_dist += stats::degree_distribution_distance(
            &tv.graph,
            &frontier.sample_subgraph(&*tv.graph, seed).graph,
        );
        u_dist += stats::degree_distribution_distance(
            &tv.graph,
            &uniform.sample_subgraph(&*tv.graph, seed).graph,
        );
    }
    assert!(
        f_dist <= u_dist + 0.25,
        "frontier TV distance {f_dist:.3} should not be far above uniform's {u_dist:.3}"
    );
}

#[test]
fn every_vertex_eventually_sampled() {
    // Requirement 2 of Sec. III-C: over enough sampling iterations, the
    // initial uniform frontier covers all training vertices.
    let d = presets::scale_spec(&presets::ppi_spec(), 400).generate(33);
    let tv = d.train_view();
    let n = tv.graph.num_vertices();
    let sampler = DashboardSampler::new(FrontierConfig {
        frontier_size: 40,
        budget: 120,
        ..FrontierConfig::default()
    });
    let mut seen = vec![false; n];
    for seed in 0..200 {
        for v in sampler.sample_vertices(&*tv.graph, seed) {
            seen[v as usize] = true;
        }
        if seen.iter().all(|&s| s) {
            break;
        }
    }
    let covered = seen.iter().filter(|&&s| s).count();
    assert!(
        covered as f64 >= n as f64 * 0.99,
        "only {covered}/{n} vertices ever sampled"
    );
}

#[test]
fn degree_cap_reduces_hub_domination() {
    // Sec. VI-C2: on skewed graphs the cap prevents all subgraphs from
    // containing mostly the same (hub) vertices.
    let d = presets::amazon_scaled(34);
    let tv = d.train_view();
    let capped = DashboardSampler::new(FrontierConfig {
        frontier_size: 50,
        budget: 300,
        degree_cap: Some(30),
        ..FrontierConfig::default()
    });
    let uncapped = DashboardSampler::new(FrontierConfig {
        frontier_size: 50,
        budget: 300,
        degree_cap: None,
        ..FrontierConfig::default()
    });
    // Jaccard overlap between two subsequent subgraphs' vertex sets.
    let overlap = |s: &DashboardSampler| -> f64 {
        let a = s.sample_vertices(&*tv.graph, 1);
        let b = s.sample_vertices(&*tv.graph, 2);
        let sa: std::collections::HashSet<u32> = a.into_iter().collect();
        let sb: std::collections::HashSet<u32> = b.into_iter().collect();
        let inter = sa.intersection(&sb).count() as f64;
        inter / (sa.len() + sb.len()) as f64
    };
    let (o_cap, o_uncap) = (overlap(&capped), overlap(&uncapped));
    assert!(
        o_cap <= o_uncap + 0.05,
        "cap should not increase subgraph overlap: capped {o_cap:.3} vs uncapped {o_uncap:.3}"
    );
}

#[test]
fn pool_refill_samples_are_distinct() {
    use gsgcn::sampler::pool::SubgraphPool;
    let d = presets::ppi_scaled(35);
    let tv = d.train_view();
    let sampler = DashboardSampler::new(FrontierConfig {
        frontier_size: 30,
        budget: 150,
        ..FrontierConfig::default()
    });
    let mut pool = SubgraphPool::new(6, 99);
    pool.refill(&sampler, &*tv.graph);
    let mut sets = Vec::new();
    while !pool.is_empty() {
        sets.push(pool.pop_or_refill(&sampler, &*tv.graph).origin);
    }
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            assert_ne!(sets[i], sets[j], "pool entries {i} and {j} identical");
        }
    }
}
