//! Cross-crate comparison tests: the proposed trainer against the three
//! baselines on identical data — the qualitative claims of Fig. 2 and
//! Table II, asserted at small scale.

use gsgcn::baselines::fastgcn::{FastGcnConfig, FastGcnTrainer};
use gsgcn::baselines::fullbatch::{FullBatchConfig, FullBatchTrainer};
use gsgcn::baselines::sage::{SageConfig, SageTrainer};
use gsgcn::core::{GsGcnTrainer, TrainerConfig};
use gsgcn::data::presets;
use gsgcn::nn::adam::AdamHyper;

fn dataset() -> gsgcn::data::Dataset {
    presets::scale_spec(&presets::ppi_spec(), 700).generate(21)
}

#[test]
fn all_four_systems_learn_the_same_task() {
    let d = dataset();
    let adam = AdamHyper {
        lr: 2e-2,
        ..AdamHyper::default()
    };

    let mut cfg = TrainerConfig::quick_test();
    cfg.epochs = 40;
    cfg.sampler.budget = 150;
    cfg.sampler.frontier_size = 30;
    cfg.adam = adam;
    let mut ours = GsGcnTrainer::new(&d, cfg).unwrap();
    let ours_f1 = ours.train().unwrap().final_val_f1;

    let mut sage = SageTrainer::new(
        &d,
        SageConfig {
            fanout: 5,
            batch_size: 64,
            hidden_dims: vec![64, 64],
            adam,
            seed: 1,
        },
    )
    .unwrap();
    for _ in 0..25 {
        sage.train_epoch();
    }
    let sage_f1 = sage.evaluate_val();

    let mut fb = FullBatchTrainer::new(
        &d,
        FullBatchConfig {
            hidden_dims: vec![64, 64],
            adam,
            seed: 1,
        },
    )
    .unwrap();
    for _ in 0..120 {
        fb.train_epoch();
    }
    let fb_f1 = fb.evaluate_val();

    let mut fast = FastGcnTrainer::new(
        &d,
        FastGcnConfig {
            layer_size: 200,
            batch_size: 64,
            hidden_dims: vec![64, 64],
            adam,
            seed: 1,
        },
    )
    .unwrap();
    for _ in 0..25 {
        fast.train_epoch();
    }
    let fast_f1 = fast.evaluate_val();

    // Every system must clear a learning floor...
    for (name, f1) in [
        ("proposed", ours_f1),
        ("graphsage", sage_f1),
        ("fullbatch", fb_f1),
        ("fastgcn", fast_f1),
    ] {
        assert!(f1 > 0.2, "{name} failed to learn: F1 {f1:.4}");
    }
    // ...and the proposed model must be competitive with the best
    // baseline (the Fig. 2 accuracy claim, with generous slack for the
    // tiny test scale).
    let best_baseline = sage_f1.max(fb_f1).max(fast_f1);
    assert!(
        ours_f1 > best_baseline - 0.12,
        "proposed F1 {ours_f1:.4} far below best baseline {best_baseline:.4}"
    );
}

#[test]
fn neighbor_explosion_work_ratio() {
    // The Sec. III-B complexity argument, measured: for equal batches the
    // layer sampler touches ×d_LS more nodes per added layer.
    let d = dataset();
    let mut sizes_by_depth = Vec::new();
    for layers in 1..=3 {
        let mut sage = SageTrainer::new(
            &d,
            SageConfig {
                fanout: 8,
                batch_size: 64,
                hidden_dims: vec![32; layers],
                adam: AdamHyper::default(),
                seed: 2,
            },
        )
        .unwrap();
        sage.train_batch(&(0..64u32).collect::<Vec<_>>());
        sizes_by_depth.push(sage.last_layer_sizes()[0]);
    }
    assert!(
        sizes_by_depth[1] as f64 > sizes_by_depth[0] as f64 * 1.5,
        "2-layer input {} should far exceed 1-layer {}",
        sizes_by_depth[1],
        sizes_by_depth[0]
    );
    assert!(
        sizes_by_depth[2] > sizes_by_depth[1],
        "3-layer input should exceed 2-layer"
    );
}

#[test]
fn proposed_epoch_work_is_depth_linear() {
    // Per-epoch iteration count is depth-independent, and each iteration
    // touches exactly the subgraph — no explosion in the node counts.
    let d = dataset();
    for layers in 1..=3 {
        let mut cfg = TrainerConfig::quick_test();
        cfg.hidden_dims = vec![32; layers];
        cfg.epochs = 1;
        cfg.sampler.budget = 200;
        cfg.sampler.frontier_size = 40;
        let mut t = GsGcnTrainer::new(&d, cfg).unwrap();
        let stats = t.train_epoch().unwrap();
        assert!(
            stats.mean_subgraph_vertices <= 200.0,
            "layer {layers}: subgraph grew beyond budget: {}",
            stats.mean_subgraph_vertices
        );
    }
}
