//! End-to-end integration tests: the full pipeline from dataset synthesis
//! through parallel sampling, training and evaluation.

use gsgcn::core::trainer::EvalSplit;
use gsgcn::core::{GsGcnTrainer, TrainerConfig};
use gsgcn::data::presets;

#[test]
fn full_pipeline_reaches_useful_f1() {
    let dataset = presets::scale_spec(&presets::ppi_spec(), 800).generate(1);
    let mut cfg = TrainerConfig::quick_test();
    cfg.epochs = 30;
    cfg.sampler.frontier_size = 30;
    cfg.sampler.budget = 200;
    let mut trainer = GsGcnTrainer::new(&dataset, cfg).unwrap();
    let report = trainer.train().unwrap();
    assert!(
        report.final_val_f1 > 0.35,
        "val F1 too low: {}",
        report.final_val_f1
    );
    assert!(report.test_f1 > 0.3, "test F1 too low: {}", report.test_f1);
    // Loss must have decreased substantially over training.
    let first = report.epochs.first().unwrap().mean_loss;
    let last = report.epochs.last().unwrap().mean_loss;
    assert!(last < first * 0.8, "loss barely moved: {first} → {last}");
}

#[test]
fn single_label_task_trains() {
    let dataset = presets::scale_spec(&presets::reddit_spec(), 800).generate(2);
    assert_eq!(dataset.task, gsgcn::data::TaskKind::SingleLabel);
    let mut cfg = TrainerConfig::quick_test();
    cfg.epochs = 20;
    cfg.sampler.budget = 250;
    cfg.sampler.frontier_size = 40;
    let mut trainer = GsGcnTrainer::new(&dataset, cfg).unwrap();
    let report = trainer.train().unwrap();
    // Single-label on community-aligned classes converges fast.
    assert!(
        report.final_val_f1 > 0.5,
        "single-label F1: {}",
        report.final_val_f1
    );
}

#[test]
fn parallel_and_serial_trainers_agree() {
    let dataset = presets::scale_spec(&presets::ppi_spec(), 600).generate(3);
    let run = |threads: usize, p_inter: usize| {
        let mut cfg = TrainerConfig::quick_test();
        cfg.epochs = 3;
        cfg.threads = threads;
        cfg.p_inter = p_inter;
        let mut t = GsGcnTrainer::new(&dataset, cfg).unwrap();
        let r = t.train().unwrap();
        (r.final_loss(), r.final_val_f1)
    };
    // Same p_inter → identical pool contents → identical trajectory.
    let (l1, f1) = run(1, 4);
    let (l2, f2) = run(8, 4);
    assert_eq!(l1, l2, "loss must not depend on thread count");
    assert_eq!(f1, f2, "F1 must not depend on thread count");
}

#[test]
fn evaluation_splits_are_disjoint_in_reporting() {
    let dataset = presets::scale_spec(&presets::yelp_spec(), 600).generate(4);
    let mut cfg = TrainerConfig::quick_test();
    cfg.epochs = 2;
    let mut trainer = GsGcnTrainer::new(&dataset, cfg).unwrap();
    trainer.train_epoch().unwrap();
    // All three splits evaluable without panic, values in [0, 1].
    for split in [EvalSplit::Train, EvalSplit::Val, EvalSplit::Test] {
        let f = trainer.evaluate(split);
        assert!((0.0..=1.0).contains(&f));
    }
}

#[test]
fn skewed_amazon_shape_with_degree_cap() {
    let dataset = presets::scale_spec(&presets::amazon_spec(), 800).generate(5);
    let mut cfg = TrainerConfig::quick_test();
    cfg.epochs = 10;
    cfg.sampler.degree_cap = Some(30); // the paper's skew mitigation
    let mut trainer = GsGcnTrainer::new(&dataset, cfg).unwrap();
    let report = trainer.train().unwrap();
    // The point under test is sampler robustness under heavy skew: the
    // run must stay numerically sound and optimise (accuracy quality is
    // covered by the longer-horizon tests above).
    assert!(report.epochs.iter().all(|e| e.mean_loss.is_finite()));
    let first = report.epochs.first().unwrap().mean_loss;
    let last = report.epochs.last().unwrap().mean_loss;
    assert!(
        last < first,
        "loss should decrease under degree cap: {first} → {last}"
    );
    assert!((0.0..=1.0).contains(&report.final_val_f1));
}
